(* [dvrun serve]: jobs over a Unix-domain socket. Connections are handled
   one at a time and each follows a strict shape — a burst of Submit
   frames, then Finish, then the server streams every reply back in
   submission order and closes the connection. The shard pool persists
   across connections; only the socket conversation is sequential.

   Because connections are sequential, one connection's submissions occupy
   a contiguous run of sequence numbers, so pulling [Dispatcher.next] once
   per submission yields exactly this connection's results, in order. *)

module Trace = Dejavu.Trace

type t = {
  dispatcher : (Job.spec, Job.output) Dispatcher.t;
  out_dir : string;
  socket_path : string;
  listen_fd : Unix.file_descr;
  mutable conns : int;
  mutable next_name : int; (* suffix for server-assigned trace paths *)
}

let outcome_int = function
  | Dispatcher.Done _ -> 0
  | Dispatcher.Failed _ -> 1
  | Dispatcher.Timed_out -> 2
  | Dispatcher.Cancelled_ -> 3

let reply_of_result (r : (Job.spec, Job.output) Dispatcher.result) :
    Protocol.reply =
  let op =
    match r.r_payload with
    | Job.Record _ -> Protocol.Op_record
    | Job.Replay _ -> Protocol.Op_replay
    | Job.Roundtrip _ -> Protocol.Op_roundtrip
    | Job.Lint _ -> Protocol.Op_lint
    | Job.Explore _ -> Protocol.Op_explore
  in
  let status, digest, words =
    match r.r_outcome with
    | Dispatcher.Done o -> (o.Job.o_status, o.Job.o_digest, o.Job.o_words)
    | Dispatcher.Failed msg -> (msg, "", 0)
    | Dispatcher.Timed_out -> ("deadline exceeded", "", 0)
    | Dispatcher.Cancelled_ -> ("cancelled", "", 0)
  in
  {
    p_seq = r.r_seq;
    p_op = op;
    p_workload = Job.workload_of r.r_payload;
    p_outcome = outcome_int r.r_outcome;
    p_status = status;
    p_digest = digest;
    p_attempts = r.r_attempts;
    p_latency_us = int_of_float (r.r_latency *. 1e6);
    p_words = words;
  }

(* The server owns output naming: a record's trace lands in
   [out_dir]/NAME-SEQ.trace so concurrent submissions of the same workload
   never collide. *)
let spec_of_submit t ~seq (s : Protocol.request) : Job.spec =
  match s with
  | Protocol.Finish -> invalid_arg "spec_of_submit: Finish"
  | Protocol.Submit q -> (
    match q.q_op with
    | Protocol.Op_record ->
      Job.Record
        {
          workload = q.q_workload;
          seed = q.q_seed;
          out =
            Filename.concat t.out_dir (Fmt.str "%s-%d.trace" q.q_workload seq);
        }
    | Protocol.Op_replay ->
      Job.Replay { workload = q.q_workload; trace = q.q_trace }
    | Protocol.Op_roundtrip ->
      Job.Roundtrip { workload = q.q_workload; seed = q.q_seed }
    | Protocol.Op_lint -> Job.Lint { workload = q.q_workload }
    (* one submitted explore job runs the ROOT schedule only: the socket
       protocol has no fan-out channel, so remote exploration is a probe —
       the full frontier search runs through [Explore_farm] (dvrun
       explore --shards) where children feed back into the dispatcher *)
    | Protocol.Op_explore ->
      Job.Explore
        {
          workload = q.q_workload;
          seed = q.q_seed;
          prefix = [||];
          pb = 2;
          db = 1;
          dpor = true;
        })

let create ?(shards = 4) ?slice ~socket_path ~out_dir () : t =
  Job.preload ();
  if not (Sys.file_exists out_dir) then Sys.mkdir out_dir 0o755;
  if Sys.file_exists socket_path then Sys.remove socket_path;
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX socket_path);
  Unix.listen listen_fd 8;
  (try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore)
   with Invalid_argument _ -> ());
  (* warm shards: each serve worker keeps its pool of baseline-reset VMs
     across connections — exactly the long-lived process the warm path is
     for — with the runner's size-aware placement routing submissions *)
  let stats = Stats.create () in
  let runner = Job.runner ?slice ~stats ~shards () in
  {
    dispatcher =
      Dispatcher.create ~shards ~place:runner.Job.place ~stats
        ~run:runner.Job.run ();
    out_dir;
    socket_path;
    listen_fd;
    conns = 0;
    next_name = 0;
  }

(* One conversation: Submits until Finish (or EOF), then replies in
   submission order. For a protocol error to poison only its own
   connection, every result slot this conversation submitted must be
   consumed before the next connection is served — a malformed frame or a
   client disconnect mid-reply would otherwise leave orphaned results in
   the dispatcher's reorder buffer, and the next connection's reply loop
   would pull them as its own, desynchronizing every later conversation.
   The [finally] below discards whatever the reply loop never reached. *)
let handle_conn t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let submitted = ref 0 in
  let consumed = ref 0 in
  Fun.protect
    ~finally:(fun () ->
      while !consumed < !submitted do
        match Dispatcher.next t.dispatcher with
        | Some _ -> incr consumed
        | None -> consumed := !submitted (* closed: no more slots coming *)
      done;
      try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      try
        let rec read_loop () =
          match Protocol.read_request ic with
          | None | Some Protocol.Finish -> ()
          | Some (Protocol.Submit q as req) ->
            let deadline =
              if q.q_deadline_ms > 0 then
                Some
                  (Unix.gettimeofday ()
                  +. (float_of_int q.q_deadline_ms /. 1e3))
              else None
            in
            let seq = t.next_name in
            t.next_name <- seq + 1;
            let spec = spec_of_submit t ~seq req in
            ignore
              (Dispatcher.submit t.dispatcher ?deadline
                 ~max_retries:q.q_max_retries spec);
            incr submitted;
            read_loop ()
        in
        read_loop ();
        for _ = 1 to !submitted do
          let r = Dispatcher.next t.dispatcher in
          incr consumed;
          match r with
          | None -> ()
          | Some r -> Protocol.write_reply oc (reply_of_result r)
        done
      with
      | Trace.Format_error msg ->
        (try Fmt.epr "serve: protocol error: %s@." msg with _ -> ())
      | Sys_error _ | Unix.Unix_error _ -> ())

(* Accept loop; [max_conns] bounds how many connections to serve (tests),
   [None] serves forever. *)
let serve ?max_conns t =
  let continue () =
    match max_conns with None -> true | Some n -> t.conns < n
  in
  while continue () do
    let fd, _ = Unix.accept t.listen_fd in
    t.conns <- t.conns + 1;
    handle_conn t fd
  done

let shutdown t =
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (try Sys.remove t.socket_path with Sys_error _ -> ());
  ignore (Dispatcher.drain t.dispatcher)

let stats t = Dispatcher.stats t.dispatcher

(* --- client side --- *)

(* Submit a batch over the socket and collect the replies, in order. *)
let client_submit ~socket_path (reqs : Protocol.request list) :
    Protocol.reply list =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket_path);
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      List.iter
        (fun r ->
          match r with
          | Protocol.Finish -> ()
          | Protocol.Submit _ -> Protocol.write_request oc r)
        reqs;
      Protocol.write_request oc Protocol.Finish;
      let rec collect acc =
        match Protocol.read_reply ic with
        | None -> List.rev acc
        | Some r -> collect (r :: acc)
      in
      collect [])
