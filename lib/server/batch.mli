(** Batch mode: run a set of jobs across N shards, report per-job rows in
    submission order plus an order-stable aggregate digest (shard-count
    invariant: the N-shard aggregate equals the 1-shard one; warm-vs-cold
    invariant: the warm aggregate equals the cold one). *)

type row = {
  b_name : string;
  b_op : string;
  b_outcome : string;  (** done / failed: msg / timeout / cancelled *)
  b_status : string;
  b_digest : string;
  b_attempts : int;
  b_latency : float;  (** seconds, submission to completion *)
  b_shard : int;
}

type report = {
  rows : row list;  (** submission order *)
  aggregate : string;
      (** hex digest folding each job's name/outcome/status/digest, in
          submission order *)
  ok : bool;
  wall_s : float;
  jobs_per_s : float;
  shards : int;
  stats : Stats.view;
  warm : Warm.stats;  (** all shard pools folded; zero on a cold run *)
}

(** [warm] (default true) runs jobs on shard pools of baseline-reset VMs
    with size-aware placement; [~warm:false] cold-boots a VM per job (the
    reference the warm path must match byte-for-byte). [config] is the
    base VM config for every job's VM (per-job seeds override its
    environment seed; default [Vm.Rt.default_config]). *)
val run_specs :
  ?shards:int ->
  ?config:Vm.Rt.config ->
  ?deadline_s:float ->
  ?max_retries:int ->
  ?slice:int ->
  ?warm:bool ->
  Job.spec list ->
  report

(** Record every registry workload into [out_dir]/NAME.trace, [rounds]
    times over (default 1; later rounds write NAME-rK.trace and exercise
    warm reuse). Creates [out_dir] if missing. *)
val run_registry :
  ?shards:int ->
  ?config:Vm.Rt.config ->
  ?seed:int ->
  ?deadline_s:float ->
  ?max_retries:int ->
  ?slice:int ->
  ?warm:bool ->
  ?rounds:int ->
  out_dir:string ->
  unit ->
  report

val pp_row : Format.formatter -> row -> unit

val pp_report : Format.formatter -> report -> unit
