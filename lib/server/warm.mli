(** Per-shard warm-VM pool: one booted VM per workload, reset to a
    baseline snapshot between jobs instead of re-created. A reset VM is
    state-identical to a cold boot under the job's seed (compiled-method
    rollback re-pays compile clock charges; hooks reinstalled live; PRNG
    streams reseeded), so traces and digests are byte-identical to fresh
    boots — tested registry-wide.

    NOT thread-safe: a pool belongs to exactly one shard domain. *)

type t

type stats = {
  w_hits : int;  (** acquires served by a baseline reset *)
  w_misses : int;  (** acquires that had to boot a VM *)
  w_evictions : int;
  w_resident : int;  (** VMs currently held *)
}

(** [cap] bounds resident VMs (LRU eviction, default 32 — the whole
    registry fits one shard's pool); [config] is the base VM config every
    boot uses (the per-acquire seed overrides its environment seed;
    default [Vm.Rt.default_config]); [note] observes every acquire
    (hit = reset, not boot), e.g. to fold into farm-wide {!Stats}. *)
val create :
  ?cap:int -> ?config:Vm.Rt.config -> ?note:(hit:bool -> unit) -> unit -> t

(** A VM for the entry under [seed], indistinguishable from
    [Vm.create ~config:(seed-adjusted pool config)]. The returned VM is
    owned by the pool: it may be left in any state (the next acquire
    resets it). *)
val acquire : t -> Workloads.Registry.entry -> seed:int -> Vm.t

val stats : t -> stats

val merge : stats -> stats -> stats

val zero : stats

val pp_stats : Format.formatter -> stats -> unit
