(* Schedule exploration on the farm: the frontier fan-out driver.

   Explore is the first job kind that GENERATES jobs — each completed
   schedule returns the fresh alternative prefixes it exposed
   ([Job.output.o_children]), and this driver feeds them straight back
   into the shared dispatcher queue, so the exploration frontier spreads
   over every shard's warm VM pool instead of walking one schedule at a
   time.

   Determinism: results are consumed in submission order (the
   dispatcher's reorder buffer), children are submitted from the consumer
   loop in the order their parents complete, and each schedule's outcome
   is a pure function of its decision prefix — so the submission
   sequence, the explored set, and the report signature are identical for
   ANY shard count, including 1. Only wall-clock time varies. The
   sequential DFS in [Explore.Driver] walks the same tree in a different
   order; with an unhit schedule cap the two reach the same schedule set.

   Artifact emission stays out of the hot path: jobs only report flags
   and digests; once the frontier drains, the driver re-runs each
   interesting schedule locally (it is one prefix-forced run) to record,
   emit, and replay-verify its trace + witness. *)

module Control = Explore.Control
module Driver = Explore.Driver
module Oracle = Explore.Oracle

let run ?(shards = 4) ?(config = Vm.Rt.default_config) ?slice ?(seed = 1)
    ?(pb = 2) ?(db = 1) ?(dpor = true) ?(max_schedules = 2000)
    ?(max_artifacts = 4) ?out (e : Workloads.Registry.entry) :
    Driver.report =
  Job.preload ();
  (* build the conflict oracle before the shard domains race for it *)
  let oracle = Oracle.for_entry e in
  let stats = Stats.create () in
  let runner = Job.runner ?slice ~config ~stats ~shards () in
  let d =
    Dispatcher.create ~shards ~place:runner.Job.place ~stats
      ~run:runner.Job.run ()
  in
  let submitted = ref 0 in
  let submit prefix =
    ignore
      (Dispatcher.submit d
         (Job.Explore { workload = e.name; seed; prefix; pb; db; dpor }));
    incr submitted
  in
  let explored = ref 0 and pruned = ref 0 and aborted = ref 0 in
  let frontier_left = ref 0 in
  let digests = Hashtbl.create 64 in
  let baseline = ref 0 in
  let interesting = ref [] in (* (prefix, fault?) in completion order *)
  let first_fail = ref None in
  submit [||];
  let outstanding = ref 1 in
  while !outstanding > 0 do
    match Dispatcher.next d with
    | None -> outstanding := 0
    | Some r ->
      decr outstanding;
      (match r.Dispatcher.r_outcome with
      | Dispatcher.Done o ->
        if o.Job.o_flags land Job.explore_aborted_bit <> 0 then incr aborted
        else begin
          incr explored;
          let dig = int_of_string ("0x" ^ o.Job.o_digest) in
          (* results arrive in submission order, so the first Done IS the
             root schedule: the baseline every divergence is judged by *)
          if !explored = 1 then baseline := dig;
          Hashtbl.replace digests dig ();
          pruned := !pruned + o.Job.o_pruned;
          let fault = o.Job.o_flags land Job.explore_fault_bit <> 0 in
          if fault && !first_fail = None then first_fail := Some !explored;
          let divergent = (not fault) && !explored > 1 && dig <> !baseline in
          if fault || divergent then begin
            let prefix =
              match r.Dispatcher.r_payload with
              | Job.Explore { prefix; _ } -> prefix
              | _ -> [||]
            in
            interesting := (prefix, fault) :: !interesting
          end;
          List.iter
            (fun child ->
              if !submitted < max_schedules then begin
                submit child;
                incr outstanding
              end
              else incr frontier_left)
            o.Job.o_children
        end
      | Dispatcher.Failed _ | Dispatcher.Timed_out | Dispatcher.Cancelled_ ->
        incr aborted)
  done;
  ignore (Dispatcher.drain d);
  (* emit + replay-verify the interesting schedules, re-run locally *)
  let failures =
    List.mapi
      (fun idx (prefix, fault) ->
        let oc = Control.run ~config ~seed ~pb ~db ~dpor ~oracle ~prefix e in
        let kind = if fault then Driver.Fault else Driver.Divergence in
        let out = if idx < max_artifacts then out else None in
        Driver.failure_of ?out ~config ~seed ~pb ~db ~dpor ~idx ~kind e oc)
      (List.rev !interesting)
  in
  {
    Driver.rp_workload = e.name;
    rp_pb = pb;
    rp_db = db;
    rp_dpor = dpor;
    rp_explored = !explored;
    rp_pruned = !pruned;
    rp_aborted = !aborted;
    rp_frontier_left = !frontier_left;
    rp_digests = Hashtbl.length digests;
    rp_baseline = !baseline;
    rp_failures = failures;
    rp_first_failure_at = !first_fail;
  }
