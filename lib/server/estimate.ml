(* Size estimates for dispatch placement: how many instructions a workload
   retires, measured the first time a job for it completes anywhere on the
   farm. There is no registry metadata to consult — the honest source is
   the VM's own instruction counter — so the first job of each workload
   runs un-estimated (and is therefore placed on the shared queue, which
   doubles as the measurement lane), and every later job is routed by the
   recorded figure.

   Shared across shard domains, so reads and writes go through one mutex;
   traffic is two touches per job, never per instruction. Estimates are
   hints for placement only — a stale or missing entry can cost latency,
   never correctness. *)

type t = {
  m : Mutex.t;
  tbl : (string, int) Hashtbl.t; (* workload name -> n_instr last measured *)
}

let create () = { m = Mutex.create (); tbl = Hashtbl.create 32 }

(* Record a completed job's measured size (last writer wins: sizes are
   seed-dependent only marginally, and any recent figure is a fine hint). *)
let note t name n_instr =
  Mutex.protect t.m (fun () -> Hashtbl.replace t.tbl name n_instr)

let find t name = Mutex.protect t.m (fun () -> Hashtbl.find_opt t.tbl name)

let known t = Mutex.protect t.m (fun () -> Hashtbl.length t.tbl)
