(* Batch mode: run a list of jobs (typically "record every registry
   workload") across N shards and fold the per-job digests — in submission
   order, so the aggregate is shard-count-invariant — into one digest the
   tests compare against a sequential run. Jobs run warm by default (shard
   pools of baseline-reset VMs, size-aware placement); [~warm:false] keeps
   the original cold boot per job, which the warm path must match
   byte-for-byte. *)

type row = {
  b_name : string; (* workload *)
  b_op : string; (* record / replay / roundtrip / lint *)
  b_outcome : string; (* done / failed: msg / timeout / cancelled *)
  b_status : string;
  b_digest : string;
  b_attempts : int;
  b_latency : float; (* seconds, submission -> completion *)
  b_shard : int;
}

type report = {
  rows : row list; (* submission order *)
  aggregate : string; (* hex digest over per-job digests, in order *)
  ok : bool; (* every job Done *)
  wall_s : float;
  jobs_per_s : float;
  shards : int;
  stats : Stats.view;
  warm : Warm.stats; (* all shard pools folded; zero on a cold run *)
}

let row_of_result (r : (Job.spec, Job.output) Dispatcher.result) : row =
  let op =
    match r.r_payload with
    | Job.Record _ -> "record"
    | Job.Replay _ -> "replay"
    | Job.Roundtrip _ -> "roundtrip"
    | Job.Lint _ -> "lint"
    | Job.Explore _ -> "explore"
  in
  let outcome, status, digest, words =
    match r.r_outcome with
    | Dispatcher.Done o -> ("done", o.Job.o_status, o.Job.o_digest, o.Job.o_words)
    | Dispatcher.Failed msg -> ("failed: " ^ msg, "", "", 0)
    | Dispatcher.Timed_out -> ("timeout", "", "", 0)
    | Dispatcher.Cancelled_ -> ("cancelled", "", "", 0)
  in
  ignore words;
  {
    b_name = Job.workload_of r.r_payload;
    b_op = op;
    b_outcome = outcome;
    b_status = status;
    b_digest = digest;
    b_attempts = r.r_attempts;
    b_latency = r.r_latency;
    b_shard = r.r_shard;
  }

(* The aggregate folds outcome + status + digest per job, in submission
   order: two runs agree iff every job ended the same way. *)
let aggregate_of rows =
  let b = Buffer.create 256 in
  List.iter
    (fun r ->
      Buffer.add_string b r.b_name;
      Buffer.add_char b '\x00';
      Buffer.add_string b r.b_outcome;
      Buffer.add_char b '\x00';
      Buffer.add_string b r.b_status;
      Buffer.add_char b '\x00';
      Buffer.add_string b r.b_digest;
      Buffer.add_char b '\x01')
    rows;
  Digest.to_hex (Digest.string (Buffer.contents b))

let run_specs ?(shards = 4) ?config ?deadline_s ?max_retries ?slice
    ?(warm = true) specs : report =
  Job.preload ();
  let t0 = Unix.gettimeofday () in
  let stats = Stats.create () in
  let runner =
    if warm then Some (Job.runner ?slice ?config ~stats ~shards ()) else None
  in
  let d =
    match runner with
    | Some r ->
      Dispatcher.create ~shards ~place:r.Job.place ~stats ~run:r.Job.run ()
    | None ->
      Dispatcher.create ~shards ~stats ~run:(Job.run ?slice ?config) ()
  in
  let deadline = Option.map (fun s -> t0 +. s) deadline_s in
  List.iter (fun spec -> ignore (Dispatcher.submit d ?deadline ?max_retries spec)) specs;
  let results = Dispatcher.drain d in
  let wall_s = Unix.gettimeofday () -. t0 in
  let rows = List.map row_of_result results in
  {
    rows;
    aggregate = aggregate_of rows;
    ok = List.for_all (fun r -> r.b_outcome = "done") rows;
    wall_s;
    jobs_per_s =
      (if wall_s > 0. then float_of_int (List.length rows) /. wall_s else 0.);
    shards;
    stats = Stats.view stats;
    warm =
      (match runner with
      (* safe to read: Dispatcher.drain joined the shard domains *)
      | Some r -> r.Job.warm_stats ()
      | None -> Warm.zero);
  }

(* Record every registry workload into [out_dir]/NAME.trace, [rounds]
   times over (rounds > 1 exercise warm reuse: every job after a
   workload's first resets a pooled VM instead of booting; later rounds'
   traces land in NAME-rK.trace so rounds never overwrite each other
   mid-digest). *)
let run_registry ?shards ?config ?(seed = 1) ?deadline_s ?max_retries ?slice
    ?warm ?(rounds = 1) ~out_dir () : report =
  if not (Sys.file_exists out_dir) then Sys.mkdir out_dir 0o755;
  let names = Workloads.Registry.names () in
  let specs =
    List.concat_map
      (fun round ->
        List.map
          (fun name ->
            let file =
              if round = 0 then name ^ ".trace"
              else Fmt.str "%s-r%d.trace" name (round + 1)
            in
            Job.Record
              { workload = name; seed; out = Filename.concat out_dir file })
          names)
      (List.init rounds Fun.id)
  in
  run_specs ?shards ?config ?deadline_s ?max_retries ?slice ?warm specs

let pp_row ppf r =
  Fmt.pf ppf "%-24s %-9s shard %d  %2d att  %7.1f ms  %-10s %s" r.b_name r.b_op
    r.b_shard r.b_attempts (r.b_latency *. 1e3) r.b_outcome
    (if r.b_digest = "" then r.b_status
     else r.b_status ^ "  " ^ String.sub r.b_digest 0 12)

let pp_report ppf rep =
  List.iter (fun r -> Fmt.pf ppf "%a@\n" pp_row r) rep.rows;
  Fmt.pf ppf
    "aggregate %s (%s)@\n%d jobs / %d shards in %.2fs = %.1f jobs/s@\n%a@\n%a@\n"
    rep.aggregate
    (if rep.ok then "all done" else "FAILURES")
    (List.length rep.rows) rep.shards rep.wall_s rep.jobs_per_s Stats.pp_view
    rep.stats Warm.pp_stats rep.warm
