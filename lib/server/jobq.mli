(** The farm's work queue: a mutex-guarded FIFO shared by all shard
    domains. Entries carry scheduling metadata (absolute deadline, retry
    budget, backoff base, cancellation flag); the dispatcher enforces the
    policy. *)

type 'a entry = {
  seq : int;  (** submission order; also the results-channel position *)
  payload : 'a;
  deadline : float option;  (** absolute Unix time *)
  max_retries : int;  (** extra attempts after the first failure *)
  backoff : float;  (** base seconds, doubled per failed attempt *)
  submitted_at : float;
  mutable attempts : int;
  cancelled : bool Atomic.t;
      (** set by the submitter, polled by the worker domain running the
          entry *)
}

type 'a t

val create : unit -> 'a t

(** Enqueue; raises [Invalid_argument] on a closed queue. *)
val submit :
  'a t -> ?deadline:float -> ?max_retries:int -> ?backoff:float -> 'a ->
  'a entry

(** Cooperative cancellation: a queued entry is reported cancelled when
    popped; a running one stops at its next poll. *)
val cancel : 'a entry -> unit

val is_cancelled : 'a entry -> bool

(** Block until an entry is available; [None] once the queue is closed and
    drained. Cancelled entries are returned too (the dispatcher emits their
    result slot). *)
val pop : 'a t -> 'a entry option

val close : 'a t -> unit

val depth : 'a t -> int

val is_closed : 'a t -> bool

(** Total entries ever submitted. *)
val submitted : 'a t -> int
