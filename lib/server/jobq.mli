(** The farm's work queues: one shared queue any shard may steal from,
    plus one local queue per shard that only its owner pops (warm-VM
    affinity work never migrates). Entries carry scheduling metadata
    (absolute deadline, retry budget, backoff base, earliest-start time,
    cancellation flag); the dispatcher enforces the policy, re-enqueueing
    retries with a [not_before] timestamp instead of sleeping on the
    worker domain. *)

type 'a entry = {
  seq : int;  (** submission order; also the results-channel position *)
  payload : 'a;
  deadline : float option;  (** absolute Unix time *)
  max_retries : int;  (** extra attempts after the first failure *)
  backoff : float;  (** base seconds, doubled per failed attempt *)
  submitted_at : float;
  home : int;  (** owning shard's local queue, or -1 = shared *)
  mutable attempts : int;
  mutable not_before : float;  (** absolute; 0. = poppable immediately *)
  cancelled : bool Atomic.t;
      (** set by the submitter, polled by the worker domain running the
          entry *)
}

type 'a t

(** [shards] local queues (default 1) plus the shared queue. *)
val create : ?shards:int -> unit -> 'a t

val shards : 'a t -> int

(** Enqueue onto [shard]'s local queue, or the shared queue when [shard]
    is negative (the default). Raises [Invalid_argument] on a closed
    queue or an out-of-range shard. *)
val submit :
  'a t ->
  ?deadline:float ->
  ?max_retries:int ->
  ?backoff:float ->
  ?shard:int ->
  'a ->
  'a entry

(** Put a popped entry back on its home queue, poppable again at
    [not_before] — the non-blocking retry backoff. Permitted on a closed
    queue (draining still serves requeued retries). *)
val requeue : 'a t -> 'a entry -> not_before:float -> unit

(** Cooperative cancellation: a queued entry is reported cancelled when
    popped; a running one stops at its next poll. *)
val cancel : 'a entry -> unit

val is_cancelled : 'a entry -> bool

(** Block until an entry [shard] may run is available — its own local
    queue first, then the shared queue; [None] once the queue is closed
    and nothing poppable by this shard remains. Entries still backing off
    are skipped until due; cancelled or deadline-expired entries are
    returned immediately (the dispatcher emits their result slot). *)
val pop_shard : 'a t -> shard:int -> 'a entry option

(** [pop_shard ~shard:0] — the single-queue view. *)
val pop : 'a t -> 'a entry option

val close : 'a t -> unit

(** Entries sitting in any queue right now (excludes running jobs). *)
val depth : 'a t -> int

val is_closed : 'a t -> bool

(** Total entries ever submitted. *)
val submitted : 'a t -> int
