(** Observability for the replay farm: counters, a queue-depth gauge, and a
    log2-bucketed latency histogram (p50/p99 report a bucket upper bound).
    All operations are thread/domain-safe. *)

type t

(** A consistent read-only copy for reporting. *)
type view = {
  v_submitted : int;
  v_succeeded : int;
  v_failed : int;
  v_retried : int;  (** retry attempts performed, not jobs *)
  v_cancelled : int;
  v_timed_out : int;
  v_depth : int;  (** jobs submitted but not yet completed *)
  v_peak_depth : int;
  v_warm_hits : int;  (** jobs served by a warm-VM reset *)
  v_warm_misses : int;  (** jobs that booted a VM *)
  v_mean : float;  (** seconds *)
  v_max : float;
  v_p50 : float;  (** bucket upper bound, seconds *)
  v_p99 : float;
}

type terminal = Succeeded | Failed_ | Cancelled_ | Timed_out_

val create : unit -> t

val on_submit : t -> unit

(** Undo an [on_submit] whose enqueue was refused (e.g. closed queue). *)
val on_submit_rejected : t -> unit

val on_retry : t -> unit

(** A job acquired its VM: [hit] = reset from a warm baseline rather than
    booted. *)
val on_warm : t -> hit:bool -> unit

(** Count a terminal outcome and fold [latency] (submission to completion,
    seconds) into the histogram. *)
val on_complete : t -> terminal -> latency:float -> unit

val view : t -> view

val pp_view : Format.formatter -> view -> unit
