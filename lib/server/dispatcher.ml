(* The shard pool. One VM per OCaml 5 domain: the interpreter is
   single-domain-safe by construction and shards share nothing but the work
   queues, the stats block, and the results buffer — each a small
   mutex-guarded structure touched once per job, never per instruction.

   Responsibilities:
   - place each submission (via the caller's [place] policy) on a shard's
     local queue — warm-VM affinity — or on the shared queue, which idle
     shards steal from;
   - pull entries off the queues and run them through the caller's [run]
     function, handing it a [ctx] whose [should_stop] raises on
     cancellation or an elapsed deadline (polled between VM slices);
   - bounded retry with exponential backoff on failure — by re-enqueueing
     the entry with a [not_before] timestamp, never by sleeping on the
     worker domain, so a failing job's backoff stalls nobody behind it;
   - emit exactly one result per submission, delivered to the consumer in
     submission order through a reorder buffer (workers complete out of
     order; [next] blocks until the next sequence number lands). *)

exception Cancelled

exception Deadline_exceeded

type ctx = { shard : int; seq : int; should_stop : unit -> unit }

(* Placement decision for one submission. [Shared]: any idle shard takes
   it — the right lane for jobs with no size estimate (their first run is
   the measurement) and for extra-large jobs, which would otherwise make
   every small job queued behind them on a local queue wait out the whole
   trace. [Shard i]: pinned to one shard's local queue, the warm-VM
   affinity lane. *)
type place = Shared | Shard of int

type 'r outcome =
  | Done of 'r
  | Failed of string (* after the retry budget is spent *)
  | Timed_out
  | Cancelled_

type ('a, 'r) result = {
  r_seq : int;
  r_payload : 'a;
  r_outcome : 'r outcome;
  r_attempts : int; (* executions performed (0 if never started) *)
  r_latency : float; (* submission -> completion, seconds *)
  r_shard : int;
}

type ('a, 'r) t = {
  queue : 'a Jobq.t;
  run : ctx -> 'a -> 'r;
  place : 'a -> place;
  shards : int;
  stats : Stats.t;
  m : Mutex.t;
  ready : Condition.t;
  buf : (int, ('a, 'r) result) Hashtbl.t; (* completed, not yet emitted *)
  mutable next_out : int;
  mutable domains : unit Domain.t list;
  mutable joined : bool;
}

let now () = Unix.gettimeofday ()

(* Run one attempt. [None] means the entry was re-enqueued for a backed-off
   retry and owes no result yet; [Some r] is the entry's terminal result. *)
let execute t shard (e : 'a Jobq.entry) : ('a, 'r) result option =
  let should_stop () =
    if Jobq.is_cancelled e then raise Cancelled;
    match e.deadline with
    | Some d when now () > d -> raise Deadline_exceeded
    | _ -> ()
  in
  let ctx = { shard; seq = e.seq; should_stop } in
  let finish outcome =
    Some
      {
        r_seq = e.seq;
        r_payload = e.payload;
        r_outcome = outcome;
        r_attempts = e.attempts;
        r_latency = now () -. e.submitted_at;
        r_shard = shard;
      }
  in
  (* Deadline/cancellation check BEFORE touching any VM: an entry that
     expired or was cancelled while queued completes right here with
     [attempts] untouched (0 unless a previous attempt ran). *)
  match should_stop () with
  | exception Cancelled -> finish Cancelled_
  | exception Deadline_exceeded -> finish Timed_out
  | () -> (
    e.attempts <- e.attempts + 1;
    match t.run ctx e.payload with
    | r -> finish (Done r)
    | exception Cancelled -> finish Cancelled_
    | exception Deadline_exceeded -> finish Timed_out
    | exception exn ->
      if e.attempts > e.max_retries then finish (Failed (Printexc.to_string exn))
      else begin
        (* hand the entry back to its home queue with the backoff encoded
           as an earliest-start time; this shard takes other work *)
        Stats.on_retry t.stats;
        let delay = e.backoff *. (2. ** float_of_int (e.attempts - 1)) in
        Jobq.requeue t.queue e ~not_before:(now () +. delay);
        None
      end)

let post t (r : ('a, 'r) result) =
  Stats.on_complete t.stats
    (match r.r_outcome with
    | Done _ -> Stats.Succeeded
    | Failed _ -> Stats.Failed_
    | Timed_out -> Stats.Timed_out_
    | Cancelled_ -> Stats.Cancelled_)
    ~latency:r.r_latency;
  Mutex.protect t.m (fun () ->
      Hashtbl.replace t.buf r.r_seq r;
      Condition.broadcast t.ready)

let worker t shard () =
  let rec loop () =
    match Jobq.pop_shard t.queue ~shard with
    | None -> ()
    | Some e ->
      (match execute t shard e with Some r -> post t r | None -> ());
      loop ()
  in
  loop ()

let create ?(shards = 4) ?(place = fun _ -> Shared) ?stats ~run () =
  if shards < 1 then invalid_arg "Dispatcher.create: shards < 1";
  let t =
    {
      queue = Jobq.create ~shards ();
      run;
      place;
      shards;
      stats = (match stats with Some s -> s | None -> Stats.create ());
      m = Mutex.create ();
      ready = Condition.create ();
      buf = Hashtbl.create 64;
      next_out = 0;
      domains = [];
      joined = false;
    }
  in
  t.domains <- List.init shards (fun i -> Domain.spawn (worker t i));
  t

let shards t = t.shards

let stats t = t.stats

let queue_depth t = Jobq.depth t.queue

(* Count the submission before enqueueing: a fast worker can pop and
   complete the entry before this domain runs another instruction, and
   [on_complete] decrementing depth below zero would corrupt the
   depth/peak_depth gauges. The closed-queue error path undoes the count. *)
let submit t ?deadline ?max_retries ?backoff payload =
  Stats.on_submit t.stats;
  let shard =
    match t.place payload with
    | Shared -> -1
    | Shard i -> ((i mod t.shards) + t.shards) mod t.shards
  in
  match Jobq.submit t.queue ?deadline ?max_retries ?backoff ~shard payload with
  | e -> e
  | exception exn ->
    Stats.on_submit_rejected t.stats;
    raise exn

let cancel = Jobq.cancel

let close t =
  Jobq.close t.queue;
  (* wake consumers blocked in [next]: with the queue closed, the drained
     check can now succeed *)
  Mutex.protect t.m (fun () -> Condition.broadcast t.ready)

(* Next result in submission order; None once the queue is closed and every
   submitted entry's slot has been emitted. Waits on [ready], which [post]
   broadcasts, and which [close] must also wake — see the re-broadcast in
   [close] below.

   Only a closed queue guarantees no later submission can fill the slot, so
   an open, empty queue still blocks here. *)
let rec next t : ('a, 'r) result option =
  let r =
    Mutex.protect t.m (fun () ->
        match Hashtbl.find_opt t.buf t.next_out with
        | Some r ->
          Hashtbl.remove t.buf t.next_out;
          t.next_out <- t.next_out + 1;
          `Got r
        | None ->
          if Jobq.is_closed t.queue && t.next_out >= Jobq.submitted t.queue
          then `Drained
          else begin
            Condition.wait t.ready t.m;
            `Retry
          end)
  in
  match r with `Got r -> Some r | `Drained -> None | `Retry -> next t

let join t =
  if not t.joined then begin
    t.joined <- true;
    List.iter Domain.join t.domains;
    t.domains <- []
  end

(* Close, collect every remaining result in submission order, and join the
   shard domains. *)
let drain t : ('a, 'r) result list =
  close t;
  let rec collect acc =
    match next t with None -> List.rev acc | Some r -> collect (r :: acc)
  in
  let rs = collect [] in
  join t;
  rs
