(* The shard pool. One VM per OCaml 5 domain: the interpreter is
   single-domain-safe by construction and shards share nothing but the work
   queue, the stats block, and the results buffer — each a small
   mutex-guarded structure touched once per job, never per instruction.

   Responsibilities:
   - pull entries off the queue and run them through the caller's [run]
     function, handing it a [ctx] whose [should_stop] raises on
     cancellation or an elapsed deadline (polled between VM slices);
   - bounded retry with exponential backoff on failure;
   - emit exactly one result per submission, delivered to the consumer in
     submission order through a reorder buffer (workers complete out of
     order; [next] blocks until the next sequence number lands). *)

exception Cancelled

exception Deadline_exceeded

type ctx = { shard : int; seq : int; should_stop : unit -> unit }

type 'r outcome =
  | Done of 'r
  | Failed of string (* after the retry budget is spent *)
  | Timed_out
  | Cancelled_

type ('a, 'r) result = {
  r_seq : int;
  r_payload : 'a;
  r_outcome : 'r outcome;
  r_attempts : int; (* executions performed (0 if never started) *)
  r_latency : float; (* submission -> completion, seconds *)
  r_shard : int;
}

type ('a, 'r) t = {
  queue : 'a Jobq.t;
  run : ctx -> 'a -> 'r;
  shards : int;
  stats : Stats.t;
  m : Mutex.t;
  ready : Condition.t;
  buf : (int, ('a, 'r) result) Hashtbl.t; (* completed, not yet emitted *)
  mutable next_out : int;
  mutable domains : unit Domain.t list;
  mutable joined : bool;
}

let now () = Unix.gettimeofday ()

(* Backoff nap that abandons early on cancellation, so cancelling a job
   stuck in retry loops takes effect promptly. *)
let backoff_nap (e : 'a Jobq.entry) delay =
  let until = now () +. delay in
  let rec nap () =
    if (not (Jobq.is_cancelled e)) && now () < until then begin
      Unix.sleepf (min 0.01 (until -. now ()));
      nap ()
    end
  in
  nap ()

let execute t shard (e : 'a Jobq.entry) : ('a, 'r) result =
  let should_stop () =
    if Jobq.is_cancelled e then raise Cancelled;
    match e.deadline with
    | Some d when now () > d -> raise Deadline_exceeded
    | _ -> ()
  in
  let ctx = { shard; seq = e.seq; should_stop } in
  let rec attempt () =
    e.attempts <- e.attempts + 1;
    match t.run ctx e.payload with
    | r -> Done r
    | exception Cancelled -> Cancelled_
    | exception Deadline_exceeded -> Timed_out
    | exception exn ->
      if e.attempts > e.max_retries then Failed (Printexc.to_string exn)
      else begin
        Stats.on_retry t.stats;
        backoff_nap e (e.backoff *. (2. ** float_of_int (e.attempts - 1)));
        match should_stop () with
        | () -> attempt ()
        | exception Cancelled -> Cancelled_
        | exception Deadline_exceeded -> Timed_out
      end
  in
  let outcome =
    (* a queued entry may have been cancelled or expired while waiting *)
    match should_stop () with
    | () -> attempt ()
    | exception Cancelled -> Cancelled_
    | exception Deadline_exceeded -> Timed_out
  in
  {
    r_seq = e.seq;
    r_payload = e.payload;
    r_outcome = outcome;
    r_attempts = e.attempts;
    r_latency = now () -. e.submitted_at;
    r_shard = shard;
  }

let post t (r : ('a, 'r) result) =
  Stats.on_complete t.stats
    (match r.r_outcome with
    | Done _ -> Stats.Succeeded
    | Failed _ -> Stats.Failed_
    | Timed_out -> Stats.Timed_out_
    | Cancelled_ -> Stats.Cancelled_)
    ~latency:r.r_latency;
  Mutex.protect t.m (fun () ->
      Hashtbl.replace t.buf r.r_seq r;
      Condition.broadcast t.ready)

let worker t shard () =
  let rec loop () =
    match Jobq.pop t.queue with
    | None -> ()
    | Some e ->
      post t (execute t shard e);
      loop ()
  in
  loop ()

let create ?(shards = 4) ~run () =
  if shards < 1 then invalid_arg "Dispatcher.create: shards < 1";
  let t =
    {
      queue = Jobq.create ();
      run;
      shards;
      stats = Stats.create ();
      m = Mutex.create ();
      ready = Condition.create ();
      buf = Hashtbl.create 64;
      next_out = 0;
      domains = [];
      joined = false;
    }
  in
  t.domains <- List.init shards (fun i -> Domain.spawn (worker t i));
  t

let shards t = t.shards

let stats t = t.stats

let queue_depth t = Jobq.depth t.queue

(* Count the submission before enqueueing: a fast worker can pop and
   complete the entry before this domain runs another instruction, and
   [on_complete] decrementing depth below zero would corrupt the
   depth/peak_depth gauges. The closed-queue error path undoes the count. *)
let submit t ?deadline ?max_retries ?backoff payload =
  Stats.on_submit t.stats;
  match Jobq.submit t.queue ?deadline ?max_retries ?backoff payload with
  | e -> e
  | exception exn ->
    Stats.on_submit_rejected t.stats;
    raise exn

let cancel = Jobq.cancel

let close t =
  Jobq.close t.queue;
  (* wake consumers blocked in [next]: with the queue closed, the drained
     check can now succeed *)
  Mutex.protect t.m (fun () -> Condition.broadcast t.ready)

(* Next result in submission order; None once the queue is closed and every
   submitted entry's slot has been emitted. Waits on [ready], which [post]
   broadcasts, and which [close] must also wake — see the re-broadcast in
   [close] below.

   Only a closed queue guarantees no later submission can fill the slot, so
   an open, empty queue still blocks here. *)
let rec next t : ('a, 'r) result option =
  let r =
    Mutex.protect t.m (fun () ->
        match Hashtbl.find_opt t.buf t.next_out with
        | Some r ->
          Hashtbl.remove t.buf t.next_out;
          t.next_out <- t.next_out + 1;
          `Got r
        | None ->
          if Jobq.is_closed t.queue && t.next_out >= Jobq.submitted t.queue
          then `Drained
          else begin
            Condition.wait t.ready t.m;
            `Retry
          end)
  in
  match r with `Got r -> Some r | `Drained -> None | `Retry -> next t

let join t =
  if not t.joined then begin
    t.joined <- true;
    List.iter Domain.join t.domains;
    t.domains <- []
  end

(* Close, collect every remaining result in submission order, and join the
   shard domains. *)
let drain t : ('a, 'r) result list =
  close t;
  let rec collect acc =
    match next t with None -> List.rev acc | Some r -> collect (r :: acc)
  in
  let rs = collect [] in
  join t;
  rs
