(** Measured per-workload size estimates (instructions retired), feeding
    the dispatcher's size-aware placement. Unestimated workloads run from
    the shared queue, which doubles as the measurement lane; completed jobs
    report their VM's instruction count here. Thread/domain-safe; hints
    only — staleness can cost latency, never correctness. *)

type t

val create : unit -> t

(** Record a completed job's measured instruction count (last writer
    wins). *)
val note : t -> string -> int -> unit

val find : t -> string -> int option

(** Number of workloads with a recorded estimate. *)
val known : t -> int
