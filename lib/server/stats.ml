(* Observability for the replay farm: monotonic counters, a queue-depth
   gauge, and a log2-bucketed latency histogram cheap enough to update on
   every job completion. All updates go through one mutex — they are rare
   (per job, not per instruction) and callers sit on several domains. *)

let n_buckets = 40 (* bucket i covers [2^i, 2^(i+1)) microseconds *)

type t = {
  m : Mutex.t;
  mutable submitted : int;
  mutable succeeded : int;
  mutable failed : int;
  mutable retried : int; (* retry attempts performed, not jobs *)
  mutable cancelled : int;
  mutable timed_out : int;
  mutable depth : int; (* jobs submitted but not yet completed *)
  mutable peak_depth : int;
  mutable warm_hits : int; (* jobs served by a warm-VM reset *)
  mutable warm_misses : int; (* jobs that booted a VM *)
  buckets : int array;
  mutable lat_n : int;
  mutable lat_sum : float; (* seconds *)
  mutable lat_max : float;
}

(* A read-only copy for reporting, so printers never hold the mutex. *)
type view = {
  v_submitted : int;
  v_succeeded : int;
  v_failed : int;
  v_retried : int;
  v_cancelled : int;
  v_timed_out : int;
  v_depth : int;
  v_peak_depth : int;
  v_warm_hits : int;
  v_warm_misses : int;
  v_mean : float;
  v_max : float;
  v_p50 : float;
  v_p99 : float;
}

let create () =
  {
    m = Mutex.create ();
    submitted = 0;
    succeeded = 0;
    failed = 0;
    retried = 0;
    cancelled = 0;
    timed_out = 0;
    depth = 0;
    peak_depth = 0;
    warm_hits = 0;
    warm_misses = 0;
    buckets = Array.make n_buckets 0;
    lat_n = 0;
    lat_sum = 0.;
    lat_max = 0.;
  }

let bucket_of_latency secs =
  let us = int_of_float (secs *. 1e6) in
  if us <= 1 then 0
  else
    (* index of the highest set bit, clamped to the table *)
    let rec msb v i = if v <= 1 then i else msb (v lsr 1) (i + 1) in
    min (n_buckets - 1) (msb us 0)

(* Upper edge of a bucket, as seconds: quantiles report a bound, not an
   interpolation — honest for a histogram this coarse. *)
let bucket_upper i = float_of_int (1 lsl (i + 1)) /. 1e6

let locked t f = Mutex.protect t.m f

let on_submit t =
  locked t (fun () ->
      t.submitted <- t.submitted + 1;
      t.depth <- t.depth + 1;
      if t.depth > t.peak_depth then t.peak_depth <- t.depth)

(* Undo an [on_submit] whose enqueue was refused (closed queue): the entry
   never existed, so neither count should reflect it. peak_depth may keep a
   transient +1 — it is a high-water mark, not an exact gauge. *)
let on_submit_rejected t =
  locked t (fun () ->
      t.submitted <- t.submitted - 1;
      t.depth <- t.depth - 1)

let on_retry t = locked t (fun () -> t.retried <- t.retried + 1)

(* A job acquired its VM: [hit] = reset from a warm baseline, not booted. *)
let on_warm t ~hit =
  locked t (fun () ->
      if hit then t.warm_hits <- t.warm_hits + 1
      else t.warm_misses <- t.warm_misses + 1)

type terminal = Succeeded | Failed_ | Cancelled_ | Timed_out_

let on_complete t terminal ~latency =
  locked t (fun () ->
      t.depth <- t.depth - 1;
      (match terminal with
      | Succeeded -> t.succeeded <- t.succeeded + 1
      | Failed_ -> t.failed <- t.failed + 1
      | Cancelled_ -> t.cancelled <- t.cancelled + 1
      | Timed_out_ -> t.timed_out <- t.timed_out + 1);
      let i = bucket_of_latency latency in
      t.buckets.(i) <- t.buckets.(i) + 1;
      t.lat_n <- t.lat_n + 1;
      t.lat_sum <- t.lat_sum +. latency;
      if latency > t.lat_max then t.lat_max <- latency)

(* Quantile over the histogram (call under the mutex). *)
let quantile_locked t p =
  if t.lat_n = 0 then 0.
  else begin
    let target =
      max 1 (int_of_float (ceil (p *. float_of_int t.lat_n)))
    in
    let acc = ref 0 and found = ref (bucket_upper (n_buckets - 1)) in
    (try
       for i = 0 to n_buckets - 1 do
         acc := !acc + t.buckets.(i);
         if !acc >= target then begin
           found := bucket_upper i;
           raise Exit
         end
       done
     with Exit -> ());
    !found
  end

let view t : view =
  locked t (fun () ->
      {
        v_submitted = t.submitted;
        v_succeeded = t.succeeded;
        v_failed = t.failed;
        v_retried = t.retried;
        v_cancelled = t.cancelled;
        v_timed_out = t.timed_out;
        v_depth = t.depth;
        v_peak_depth = t.peak_depth;
        v_warm_hits = t.warm_hits;
        v_warm_misses = t.warm_misses;
        v_mean = (if t.lat_n = 0 then 0. else t.lat_sum /. float_of_int t.lat_n);
        v_max = t.lat_max;
        v_p50 = quantile_locked t 0.50;
        v_p99 = quantile_locked t 0.99;
      })

let pp_view ppf v =
  Fmt.pf ppf
    "jobs: %d submitted, %d ok, %d failed, %d timed out, %d cancelled (%d \
     retries)@\n\
     queue depth: %d now, %d peak; warm VMs: %d resets, %d boots@\n\
     latency: mean %.1f ms, p50 <= %.1f ms, p99 <= %.1f ms, max %.1f ms"
    v.v_submitted v.v_succeeded v.v_failed v.v_timed_out v.v_cancelled
    v.v_retried v.v_depth v.v_peak_depth v.v_warm_hits v.v_warm_misses
    (v.v_mean *. 1e3) (v.v_p50 *. 1e3) (v.v_p99 *. 1e3) (v.v_max *. 1e3)
