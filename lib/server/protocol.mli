(** Wire protocol for [dvrun serve]: 4-byte big-endian length-prefixed
    frames, payload fields in the trace codec's zigzag varints (strings as
    varint(length) + bytes). Malformed frames raise [Trace.Format_error],
    exactly like malformed trace files. *)

type op = Op_record | Op_replay | Op_roundtrip | Op_lint | Op_explore

val int_of_op : op -> int

(** Raises [Trace.Format_error] on an unknown tag. *)
val op_of_int : int -> op

val string_of_op : op -> string

type request =
  | Submit of {
      q_op : op;
      q_workload : string;
      q_seed : int;
      q_trace : string;
          (** server-side trace path for replay; [""] otherwise *)
      q_deadline_ms : int;  (** relative to receipt; 0 = none *)
      q_max_retries : int;
    }
  | Finish
      (** no more submissions; the server streams remaining replies in
          submission order, then closes the connection *)

type reply = {
  p_seq : int;
  p_op : op;
  p_workload : string;
  p_outcome : int;  (** 0 done / 1 failed / 2 timed out / 3 cancelled *)
  p_status : string;  (** VM status, or the failure message *)
  p_digest : string;
  p_attempts : int;
  p_latency_us : int;
  p_words : int;
}

val encode_request : request -> string

val decode_request : string -> request

val encode_reply : reply -> string

val decode_reply : string -> reply

(** [None] at a clean EOF; [Trace.Format_error] on truncation. *)
val read_frame : in_channel -> string option

val write_frame : out_channel -> string -> unit

val write_request : out_channel -> request -> unit

val read_request : in_channel -> request option

val write_reply : out_channel -> reply -> unit

val read_reply : in_channel -> reply option
