(* The warm-VM pool behind a shard: one booted VM per workload, reset
   between jobs instead of re-created. Cold boot is the farm's per-job tax
   — Link.build walks the whole program, and the 8 MB heap array is
   allocated and zeroed from scratch — and none of it depends on the job,
   only on the (program, config) pair. So the first job for a workload on
   a shard boots a VM, captures a baseline Vm.Snapshot immediately (before
   anything runs or draws), and every later job restores that baseline and
   reseeds the environment in place: a blit of the 4-word creation heap
   prefix plus a few field writes, in place of link + allocate + zero.

   The parity contract (tested, not assumed): a reset VM is
   state-identical to a cold boot under the job's seed. Snapshot.restore
   rolls back methods compiled since the save, so warm jobs re-pay the
   compile-time clock charges a cold boot pays; hooks are reinstalled live
   (sessions mutate them, snapshots don't cover them); Env.reseed re-points
   both PRNG streams. Traces and digests are therefore byte-identical —
   the whole point, since a replay service that perturbed results by
   recycling VMs would be useless.

   A pool belongs to exactly one shard domain — acquire is called only by
   its owner, so there is no lock. The [stats] snapshot is read by the
   submitting domain after the shard domains are joined, which is the
   synchronization point. Capacity is bounded (default 32 resident VMs
   ≈ 256 MB of heap arrays, enough for the whole 21-workload registry on
   one shard); eviction is least-recently-used, whole-VM. *)

type slot = {
  vm : Vm.t;
  baseline : Vm.Snapshot.t;
  mutable last_used : int; (* pool tick of the latest acquire *)
}

type stats = {
  w_hits : int; (* acquires served by a reset *)
  w_misses : int; (* acquires that had to boot *)
  w_evictions : int;
  w_resident : int; (* VMs currently held *)
}

type t = {
  cap : int;
  config : Vm.Rt.config; (* base config (seed overridden per acquire) *)
  table : (string, slot) Hashtbl.t; (* workload name -> warm slot *)
  note : hit:bool -> unit; (* per-acquire observer (farm-wide stats) *)
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ?(cap = 32) ?(config = Vm.Rt.default_config)
    ?(note = fun ~hit:_ -> ()) () =
  if cap < 1 then invalid_arg "Warm.create: cap < 1";
  {
    cap;
    config;
    table = Hashtbl.create 16;
    note;
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let with_seed seed (config : Vm.Rt.config) =
  { config with Vm.Rt.env_cfg = { config.Vm.Rt.env_cfg with Vm.Env.seed } }

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun name slot acc ->
        match acc with
        | Some (_, best) when best.last_used <= slot.last_used -> acc
        | _ -> Some (name, slot))
      t.table None
  in
  match victim with
  | None -> ()
  | Some (name, _) ->
    Hashtbl.remove t.table name;
    t.evictions <- t.evictions + 1

(* A VM for [e] under [seed], state-identical to a cold boot: reset from
   the baseline when the workload is resident, booted (and remembered)
   otherwise. The caller runs whatever it likes on the VM — including
   leaving it mid-program on cancellation or failure — because the next
   acquire restores the baseline regardless. *)
let acquire t (e : Workloads.Registry.entry) ~seed : Vm.t =
  t.tick <- t.tick + 1;
  match Hashtbl.find_opt t.table e.name with
  | Some slot ->
    t.hits <- t.hits + 1;
    t.note ~hit:true;
    slot.last_used <- t.tick;
    Vm.reset ~seed slot.vm slot.baseline;
    slot.vm
  | None ->
    t.misses <- t.misses + 1;
    t.note ~hit:false;
    if Hashtbl.length t.table >= t.cap then evict_lru t;
    let config = with_seed seed t.config in
    let vm = Vm.create ~config ~natives:e.natives e.program in
    (* snapshot before anything runs or draws: this baseline, restored and
       reseeded, must equal a fresh create under any seed *)
    let baseline = Vm.Snapshot.save vm in
    Hashtbl.replace t.table e.name { vm; baseline; last_used = t.tick };
    vm

let stats t : stats =
  {
    w_hits = t.hits;
    w_misses = t.misses;
    w_evictions = t.evictions;
    w_resident = Hashtbl.length t.table;
  }

let merge (a : stats) (b : stats) : stats =
  {
    w_hits = a.w_hits + b.w_hits;
    w_misses = a.w_misses + b.w_misses;
    w_evictions = a.w_evictions + b.w_evictions;
    w_resident = a.w_resident + b.w_resident;
  }

let zero : stats = { w_hits = 0; w_misses = 0; w_evictions = 0; w_resident = 0 }

let pp_stats ppf (s : stats) =
  Fmt.pf ppf "warm: %d hits / %d boots, %d evicted, %d resident" s.w_hits
    s.w_misses s.w_evictions s.w_resident
