(* The explorer's static conflict oracle: the race audit's branch points,
   resolved to executable program points.

   `dvrun lint` already computes, for every field with at least one
   conflicting access pair, the set of access sites involved — the
   (site, field) "branch points" a systematic explorer must enumerate
   (Report.branch_points). This module turns those site strings
   ("Class.method:source-pc") into per-method bitmaps over *compiled* pcs,
   so the controlled scheduler can ask, one array index per retired
   instruction, "did this instruction touch a conflict site?".

   The bitmap is resolved against a live VM because compiled pcs only
   exist after the JIT runs; [Rt.compiled.k_src_pc] maps them back to the
   source pcs the analysis named. Method uids are assigned at link time
   from the program's declaration order, so a bitmap computed against one
   VM is valid for every VM of the same program — callers may cache per
   uid across runs (Control keeps such a cache per exploration).

   Time sensitivity: the segment-commutation argument behind DPOR pruning
   (see Control) breaks when a program reads the environment clock — the
   clock ticks per instruction, so even a pure spin segment changes what a
   *later* clock read in another thread returns. If the program contains
   any time-observing instruction we mark the oracle time-sensitive and
   the scheduler treats every segment as conflicting (pruning off, search
   still bounded). *)

module Report = Analysis.Report

type t = {
  sites : (string, unit) Hashtbl.t; (* "Class.method:srcpc" *)
  n_sites : int;
  time_sensitive : bool;
  report : Report.t;
}

let time_sensitive_instr (ins : Bytecode.Instr.t) =
  match ins with
  | Bytecode.Instr.Sleep | Bytecode.Instr.Timedwait
  | Bytecode.Instr.Currenttime ->
    true
  | _ -> false

let program_time_sensitive (p : Bytecode.Decl.program) =
  List.exists
    (fun (c : Bytecode.Decl.cdecl) ->
      List.exists
        (fun (m : Bytecode.Decl.mdecl) ->
          Array.exists time_sensitive_instr m.Bytecode.Decl.m_code)
        c.Bytecode.Decl.cd_methods)
    p.Bytecode.Decl.classes

(* Build the oracle from a (possibly memoized) audit report. *)
let of_report (report : Report.t) (program : Bytecode.Decl.program) : t =
  let sites = Hashtbl.create 16 in
  List.iter
    (fun (site, _field) -> Hashtbl.replace sites site ())
    (Report.branch_points report);
  {
    sites;
    n_sites = Hashtbl.length sites;
    time_sensitive = program_time_sensitive program;
    report;
  }

let build ~name (program : Bytecode.Decl.program) : t =
  of_report (Analysis.run ~name program) program

(* Oracles are shared read-only across farm shards; memoize per workload
   name under a mutex so concurrent jobs build each one exactly once. *)
let memo : (string, t) Hashtbl.t = Hashtbl.create 8
let memo_mu = Mutex.create ()

let for_entry (e : Workloads.Registry.entry) : t =
  Mutex.lock memo_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock memo_mu)
    (fun () ->
      match Hashtbl.find_opt memo e.name with
      | Some o -> o
      | None ->
        let o = build ~name:e.name e.program in
        Hashtbl.add memo e.name o;
        o)

(* Per-method conflict bitmap over compiled pcs, resolved against [vm]'s
   compiled tier for method [uid]. Returns [||] for uncompiled methods
   (the interpreter compiles on first call, so a method being executed is
   always compiled by the time h_observe fires for it). *)
let bitmap (o : t) (vm : Vm.Rt.t) (uid : int) : bool array =
  let m = Vm.Rt.the_method vm uid in
  match m.Vm.Rt.rm_compiled with
  | None -> [||]
  | Some c ->
    let cls = vm.Vm.Rt.classes.(m.Vm.Rt.rm_cid) in
    let key = cls.Vm.Rt.rc_name ^ "." ^ m.Vm.Rt.rm_name in
    Array.map
      (fun src -> Hashtbl.mem o.sites (key ^ ":" ^ string_of_int src))
      c.Vm.Rt.k_src_pc
