(* The controlled scheduler: run ONE schedule of a workload under full
   scheduling control, recording it as a normal DejaVu session.

   The explorer owns both scheduling degrees of freedom the VM has:

   - yield decisions — at every yield point where another thread is ready,
     continue (0) or preempt (1). The decision is imposed by setting
     [vm.preempt_pending] before delegating to the stock [Figure2.record]
     instrumentation, so a forced preemption is recorded on the switches
     tape exactly like a timer-driven one and plain replay reproduces it;
   - pick decisions — at every dispatch consultation with more than one
     ready thread, which thread runs next (the FIFO head by default). The
     choice flows through the [h_pick] hook and is pushed on the session's
     picks tape, which replay feeds back through its own [h_pick].

   Decision slots are numbered in execution order; a schedule is the
   vector of values taken. [run ~prefix] forces the first |prefix| slots
   and takes defaults beyond (continue / FIFO), logging every slot with
   the alternatives still admissible under the bounds — the DFS driver
   re-runs with extended prefixes to visit them. Because execution up to
   slot k is a pure function of decisions 0..k-1, slot numbering is stable
   across runs sharing a prefix.

   Bounding: at most [pb] forced preemptions and [db] non-FIFO picks per
   schedule (Musuvathi-Qadeer iterative context bounding: most concurrency
   bugs need very few preemptions).

   DPOR / sleep-set flavour pruning: the "preempt" alternative at a yield
   is enumerated only when the segment just executed — the instructions
   since the previous decision slot, all by one thread — was CONFLICTING:
   it touched a static conflict site from the race audit's branch-point
   oracle, or performed a monitor operation, allocation, GC, clock read,
   input read, native call, spawn, or output. A non-conflicting segment
   commutes with every concurrent action, so preempting after it reaches
   only states some other explored schedule (preempting before it, or the
   pick alternatives at the previous slot) already covers; the suppressed
   branch is counted as pruned. Time-sensitive programs (the oracle's
   [time_sensitive]) disable the rule: the environment clock ticks per
   instruction, so no segment commutes. *)

module Trace = Dejavu.Trace
module Session = Dejavu.Session
module Recorder = Dejavu.Recorder
module Figure2 = Dejavu.Figure2

type kind = Yield | Pick

type node = {
  nd_kind : kind;
  nd_taken : int; (* 0/1 for Yield; a tid for Pick *)
  nd_alts : int list; (* untaken values admissible under the bounds *)
  nd_pruned : int; (* bound-admissible alternatives DPOR suppressed *)
}

type outcome = {
  oc_status : Vm.Rt.status;
  oc_output : string;
  oc_state : int; (* VM state digest *)
  oc_digest : int; (* outcome digest: state + status + output *)
  oc_log : node array; (* one entry per decision slot, execution order *)
  oc_trace : Trace.t option; (* None when the schedule aborted *)
  oc_aborted : bool; (* a forced pick named a non-ready thread *)
  oc_preempts : int;
  oc_delays : int;
  oc_instr : int;
}

(* FNV-1a-style outcome digest — deliberately not [Vm.digest] alone:
   two schedules can converge to one heap state yet differ in status or
   printed output, and the explorer must count those as distinct. *)
let mix h x = (h lxor x) * 0x100000001b3 land max_int

let mix_string h s =
  let h = ref (mix h (String.length s)) in
  String.iter (fun c -> h := mix !h (Char.code c)) s;
  !h

let outcome_digest status output state =
  mix_string (mix_string (mix 0x3ade68b1 state) (Vm.string_of_status status))
    output

let decisions (oc : outcome) = Array.map (fun n -> n.nd_taken) oc.oc_log

(* The segment-conflict counters: any delta since the segment began marks
   the segment conflicting (see the header comment for why each matters). *)
let counters (vm : Vm.Rt.t) =
  let s = vm.Vm.Rt.stats in
  ( s.Vm.Rt.n_monitor_ops,
    s.Vm.Rt.n_alloc_objects,
    s.Vm.Rt.n_gc,
    s.Vm.Rt.n_clock_reads,
    s.Vm.Rt.n_input_reads,
    s.Vm.Rt.n_native_calls,
    vm.Vm.Rt.n_threads,
    Buffer.length vm.Vm.Rt.output )

let run ?(config = Vm.Rt.default_config) ?(seed = 1) ?limit ?vm ?driver ~pb
    ~db ~dpor ~(oracle : Oracle.t) ~(prefix : int array)
    (e : Workloads.Registry.entry) : outcome =
  let vm =
    match vm with
    | Some vm -> vm
    | None ->
      let config =
        { config with
          Vm.Rt.env_cfg = { config.Vm.Rt.env_cfg with Vm.Env.seed } }
      in
      Vm.create ~config ~natives:e.natives e.program
  in
  let session = Recorder.attach vm in
  (* conflict-site bitmaps, lazily resolved per method uid *)
  let bitmaps : (int, bool array) Hashtbl.t = Hashtbl.create 16 in
  let touched = ref false in
  if oracle.Oracle.n_sites > 0 && not oracle.Oracle.time_sensitive then
    vm.Vm.Rt.hooks.Vm.Rt.h_observe <-
      Some
        (fun vm _tid uid pc _tag ->
          if not !touched then begin
            let bm =
              match Hashtbl.find_opt bitmaps uid with
              | Some bm -> bm
              | None ->
                let bm = Oracle.bitmap oracle vm uid in
                Hashtbl.add bitmaps uid bm;
                bm
            in
            if pc < Array.length bm && bm.(pc) then touched := true
          end);
  let depth = ref 0 in
  let log = ref [] in
  let preempts = ref 0 in
  let delays = ref 0 in
  let base = ref (counters vm) in
  let seg_reset () =
    touched := false;
    base := counters vm
  in
  let seg_conflicting () =
    oracle.Oracle.time_sensitive || !touched || counters vm <> !base
  in
  vm.Vm.Rt.hooks.Vm.Rt.h_yieldpoint <-
    (fun vmr ->
      if Queue.is_empty vmr.Vm.Rt.readyq then begin
        (* nobody else to run: not a decision slot; the running segment
           extends across this yield (a spawn in it would re-fill the
           ready queue AND flip the n_threads counter) *)
        vmr.Vm.Rt.preempt_pending <- false;
        Figure2.record session vmr
      end
      else begin
        let slot = !depth in
        incr depth;
        let taken =
          if slot < Array.length prefix && prefix.(slot) <> 0 then 1 else 0
        in
        let budget_ok = !preempts < pb in
        let conflicting = (not dpor) || seg_conflicting () in
        let pruned =
          if taken = 0 && budget_ok && not conflicting then 1 else 0
        in
        let alts =
          if taken = 1 then [ 0 ]
          else if budget_ok && conflicting then [ 1 ]
          else []
        in
        log :=
          { nd_kind = Yield; nd_taken = taken; nd_alts = alts;
            nd_pruned = pruned }
          :: !log;
        if taken = 1 then begin
          incr preempts;
          vmr.Vm.Rt.preempt_pending <- true
        end
        else vmr.Vm.Rt.preempt_pending <- false;
        seg_reset ();
        Figure2.record session vmr
      end);
  vm.Vm.Rt.hooks.Vm.Rt.h_pick <-
    Some
      (fun vmr fifo ->
        let others =
          List.rev (Queue.fold (fun acc t -> t :: acc) [] vmr.Vm.Rt.readyq)
        in
        let chosen =
          if others = [] then fifo
          else begin
            let slot = !depth in
            incr depth;
            let taken =
              if slot < Array.length prefix then prefix.(slot) else fifo
            in
            let budget_ok = !delays < db in
            let alts =
              (if taken <> fifo then [ fifo ] else [])
              @
              if budget_ok then List.filter (fun t -> t <> taken) others
              else []
            in
            log :=
              { nd_kind = Pick; nd_taken = taken; nd_alts = alts;
                nd_pruned = 0 }
              :: !log;
            if taken <> fifo then incr delays;
            taken
          end
        in
        seg_reset ();
        Trace.Tape.push session.Session.picks chosen;
        chosen);
  let aborted = ref false in
  (try
     match driver with
     | Some d -> d vm
     | None -> ignore (Vm.run ?limit vm)
   with Vm.Sched.Sched_error _ ->
     (* a forced pick named a thread that is not ready here: the witness
        does not fit this program point — a dead branch, counted pruned *)
     aborted := true);
  let trace = if !aborted then None else Some (Recorder.finish session) in
  let status = Vm.status vm in
  let output = Vm.output vm in
  let state = Vm.digest vm in
  {
    oc_status = status;
    oc_output = output;
    oc_state = state;
    oc_digest = outcome_digest status output state;
    oc_log = Array.of_list (List.rev !log);
    oc_trace = trace;
    oc_aborted = !aborted;
    oc_preempts = !preempts;
    oc_delays = !delays;
    oc_instr = vm.Vm.Rt.stats.Vm.Rt.n_instr;
  }
