(* The systematic explorer: depth-first search over the schedule tree the
   controlled scheduler exposes, under preemption/delay bounds, with the
   DPOR-style pruning Control implements per segment.

   Each explored schedule is a full recorded session. The root schedule
   (empty prefix: never preempt, always FIFO) fixes the baseline outcome
   digest; every other schedule is classified against it:

   - FAULT: deadlock, fatal, halt, an instruction-limited run, or a thread
     death by uncaught exception (the "!! thread" marker in the output);
   - DIVERGENCE: a clean finish whose outcome digest differs from the
     baseline — the schedule-dependent outcomes a racy program exhibits.

   Both kinds are emitted (capped) as replayable DJVU2 trace files plus a
   compact witness — the decision vector, human-readable — and each
   emitted trace is immediately replayed back from its file to confirm it
   reproduces the identical failure (status, output, and state digest). *)

module Trace = Dejavu.Trace

type kind = Fault | Divergence

type failure = {
  fl_kind : kind;
  fl_status : string;
  fl_digest : int;
  fl_decisions : int array; (* the schedule witness *)
  fl_preempts : int;
  fl_trace : string option; (* emitted DJVU2 path *)
  fl_witness : string option; (* emitted witness path *)
  fl_replay_ok : bool option; (* Some: the emitted trace was re-replayed *)
}

type report = {
  rp_workload : string;
  rp_pb : int;
  rp_db : int;
  rp_dpor : bool;
  rp_explored : int; (* schedules run to completion *)
  rp_pruned : int; (* branches DPOR suppressed (bounds allowed them) *)
  rp_aborted : int; (* schedules cut short by an unready forced pick *)
  rp_frontier_left : int; (* prefixes still queued when the cap hit *)
  rp_digests : int; (* distinct outcome digests *)
  rp_baseline : int; (* the root schedule's outcome digest *)
  rp_failures : failure list; (* execution order *)
  rp_first_failure_at : int option; (* explored-count of the first fault *)
}

let kind_name = function Fault -> "fault" | Divergence -> "divergence"

let has_substr s sub =
  let n = String.length s and m = String.length sub in
  m = 0
  ||
  let rec go i =
    if i + m > n then false
    else if String.sub s i m = sub then true
    else go (i + 1)
  in
  go 0

(* Thread deaths leave the VM Finished but print the interpreter's
   uncaught-exception marker; everything else non-Finished is a fault
   (Running_ only survives to classification under an instruction limit,
   i.e. a live- or deadlock the limit cut short). *)
let is_fault (status : Vm.Rt.status) (output : string) =
  match status with
  | Vm.Rt.Deadlocked | Vm.Rt.Fatal _ | Vm.Rt.Halted _ | Vm.Rt.Running_ ->
    true
  | Vm.Rt.Finished -> has_substr output "!! thread"

let status_label (oc : Control.outcome) =
  let s = Vm.string_of_status oc.Control.oc_status in
  if oc.Control.oc_status = Vm.Rt.Finished && is_fault oc.oc_status oc.oc_output
  then s ^ " (thread death)"
  else s

(* Children of a completed schedule: for every decision slot the run
   discovered (at or beyond its forced prefix), one extended prefix per
   admissible untaken alternative. Returned deepest-first so a stack
   consumer explores depth-first; also folds the run's fresh pruned
   count (slots inside the prefix were expanded by an earlier run). *)
let expand ~fresh_from (oc : Control.outcome) : int array list * int =
  let dec = Control.decisions oc in
  let children = ref [] in
  let pruned = ref 0 in
  Array.iteri
    (fun i (n : Control.node) ->
      if i >= fresh_from then begin
        pruned := !pruned + n.Control.nd_pruned;
        List.iter
          (fun alt ->
            children :=
              Array.init (i + 1) (fun j -> if j = i then alt else dec.(j))
              :: !children)
          n.Control.nd_alts
      end)
    oc.Control.oc_log;
  (!children, !pruned)

(* --- the witness sidecar: a one-line schedule, human-readable --- *)

let witness_string ~workload ~seed ~pb ~db ~dpor (oc : Control.outcome) =
  let b = Buffer.create 256 in
  Buffer.add_string b "# dejavu explore schedule witness v1\n";
  Buffer.add_string
    b
    (Fmt.str "workload %s\nseed %d\npb %d\ndb %d\ndpor %b\nstatus %s\n"
       workload seed pb db dpor (status_label oc));
  Buffer.add_string b "decisions";
  Array.iter
    (fun (n : Control.node) ->
      Buffer.add_string b
        (match n.Control.nd_kind with
        | Control.Yield -> Fmt.str " y%d" n.Control.nd_taken
        | Control.Pick -> Fmt.str " p%d" n.Control.nd_taken))
    oc.Control.oc_log;
  Buffer.add_char b '\n';
  Buffer.contents b

(* Parse a witness back to the decision vector (tokens keep the slot kind
   for the reader; positionally the kinds are implied by the execution). *)
let decisions_of_witness (s : string) : int array =
  let line =
    List.find_opt
      (fun l -> String.length l > 10 && String.sub l 0 10 = "decisions ")
      (String.split_on_char '\n' s)
  in
  match line with
  | None -> [||]
  | Some l ->
    String.sub l 10 (String.length l - 10)
    |> String.split_on_char ' '
    |> List.filter_map (fun tok ->
           if tok = "" then None
           else int_of_string_opt (String.sub tok 1 (String.length tok - 1)))
    |> Array.of_list

(* Emit trace + witness for one schedule and replay the trace BACK FROM
   ITS FILE, checking it reproduces the identical failure: same status,
   same output, same state digest, every tape fully consumed. *)
let emit ~dir ~config ~seed ~pb ~db ~dpor ~idx ~kind
    (e : Workloads.Registry.entry) (oc : Control.outcome) :
    string option * string option * bool option =
  match oc.Control.oc_trace with
  | None -> (None, None, None)
  | Some trace ->
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let base =
      Filename.concat dir (Fmt.str "%s-%s-%03d" e.name (kind_name kind) idx)
    in
    let tpath = base ^ ".trace" and wpath = base ^ ".witness" in
    Trace.save tpath trace;
    let w = open_out_bin wpath in
    Fun.protect
      ~finally:(fun () -> close_out w)
      (fun () ->
        output_string w (witness_string ~workload:e.name ~seed ~pb ~db ~dpor oc));
    let ok =
      match Trace.load tpath with
      | exception _ -> false
      | trace' ->
        let run, leftovers =
          Dejavu.replay ~config ~natives:e.natives ~observe:false e.program
            trace'
        in
        leftovers = []
        && run.Dejavu.status = oc.Control.oc_status
        && String.equal run.Dejavu.output oc.Control.oc_output
        && run.Dejavu.state_digest = oc.Control.oc_state
    in
    (Some tpath, Some wpath, Some ok)

let failure_of ?out ~config ~seed ~pb ~db ~dpor ~idx ~kind
    (e : Workloads.Registry.entry) (oc : Control.outcome) : failure =
  let tpath, wpath, replay_ok =
    match out with
    | Some dir -> emit ~dir ~config ~seed ~pb ~db ~dpor ~idx ~kind e oc
    | None -> (None, None, None)
  in
  {
    fl_kind = kind;
    fl_status = status_label oc;
    fl_digest = oc.Control.oc_digest;
    fl_decisions = Control.decisions oc;
    fl_preempts = oc.Control.oc_preempts;
    fl_trace = tpath;
    fl_witness = wpath;
    fl_replay_ok = replay_ok;
  }

(* --- the sequential DFS --- *)

let run ?(config = Vm.Rt.default_config) ?(seed = 1) ?limit ?(pb = 2)
    ?(db = 1) ?(dpor = true) ?(max_schedules = 2000) ?(max_artifacts = 4)
    ?out ?(stop_on_failure = false) ?oracle
    (e : Workloads.Registry.entry) : report =
  let oracle =
    match oracle with Some o -> o | None -> Oracle.for_entry e
  in
  let stack = ref [ [||] ] in
  let explored = ref 0 and pruned = ref 0 and aborted = ref 0 in
  let digests = Hashtbl.create 64 in
  let baseline = ref 0 in
  let failures = ref [] in
  let artifacts = ref 0 in
  let first_fail = ref None in
  (try
     while !stack <> [] && !explored + !aborted < max_schedules do
       match !stack with
       | [] -> assert false
       | prefix :: rest ->
         stack := rest;
         let oc =
           Control.run ~config ~seed ?limit ~pb ~db ~dpor ~oracle ~prefix e
         in
         if oc.Control.oc_aborted then incr aborted
         else begin
           incr explored;
           if !explored = 1 then baseline := oc.Control.oc_digest;
           Hashtbl.replace digests oc.Control.oc_digest ();
           let children, fresh_pruned =
             expand ~fresh_from:(Array.length prefix) oc
           in
           pruned := !pruned + fresh_pruned;
           stack := children @ !stack;
           let fault = is_fault oc.Control.oc_status oc.Control.oc_output in
           let divergent =
             (not fault) && !explored > 1
             && oc.Control.oc_digest <> !baseline
           in
           if fault || divergent then begin
             let kind = if fault then Fault else Divergence in
             let idx = List.length !failures in
             let out =
               if !artifacts < max_artifacts then out else None
             in
             if out <> None then incr artifacts;
             failures :=
               failure_of ?out ~config ~seed ~pb ~db ~dpor ~idx ~kind e oc
               :: !failures
           end;
           if fault && !first_fail = None then begin
             first_fail := Some !explored;
             if stop_on_failure then raise Exit
           end
         end
     done
   with Exit -> ());
  {
    rp_workload = e.name;
    rp_pb = pb;
    rp_db = db;
    rp_dpor = dpor;
    rp_explored = !explored;
    rp_pruned = !pruned;
    rp_aborted = !aborted;
    rp_frontier_left = List.length !stack;
    rp_digests = Hashtbl.length digests;
    rp_baseline = !baseline;
    rp_failures = List.rev !failures;
    rp_first_failure_at = !first_fail;
  }

(* A stable fingerprint of an exploration — what the determinism tests
   compare across runs and shard counts (failure order is execution order
   sequentially but completion order on the farm, so failures fold in
   sorted order). *)
let signature (r : report) =
  let h = ref (Control.mix 0x5eed (Hashtbl.hash (r.rp_explored, r.rp_aborted))) in
  let digs =
    List.sort compare (List.map (fun f -> f.fl_digest) r.rp_failures)
  in
  List.iter (fun d -> h := Control.mix !h d) digs;
  !h

(* The distinct outcome digests a bounded exploration reaches — the set
   the DPOR soundness pin compares between pruned and unpruned search.
   Recomputed by re-running (reports don't carry the set), so tests use
   small bounds. *)
let digest_set ?config ?seed ?limit ?pb ?db ?(dpor = true) ?max_schedules
    ?oracle (e : Workloads.Registry.entry) : int list =
  let stack = ref [ [||] ] in
  let seen = Hashtbl.create 64 in
  let budget = match max_schedules with Some m -> m | None -> 2000 in
  let n = ref 0 in
  let oracle =
    match oracle with Some o -> o | None -> Oracle.for_entry e
  in
  let pb = Option.value pb ~default:2 and db = Option.value db ~default:1 in
  while !stack <> [] && !n < budget do
    match !stack with
    | [] -> assert false
    | prefix :: rest ->
      stack := rest;
      let oc = Control.run ?config ?seed ?limit ~pb ~db ~dpor ~oracle ~prefix e in
      incr n;
      if not oc.Control.oc_aborted then begin
        Hashtbl.replace seen oc.Control.oc_digest ();
        let children, _ = expand ~fresh_from:(Array.length prefix) oc in
        stack := children @ !stack
      end
  done;
  List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) seen [])

let pp_report ppf (r : report) =
  Fmt.pf ppf
    "explore %s: %d schedules explored, %d pruned, %d aborted, %d distinct \
     outcomes, %d failures%s%s@."
    r.rp_workload r.rp_explored r.rp_pruned r.rp_aborted r.rp_digests
    (List.length r.rp_failures)
    (match r.rp_first_failure_at with
    | Some k -> Fmt.str " (first fault at schedule %d)" k
    | None -> "")
    (if r.rp_frontier_left > 0 then
       Fmt.str " [capped: %d prefixes unexplored]" r.rp_frontier_left
     else "");
  List.iter
    (fun f ->
      Fmt.pf ppf "  %-10s %s  digest %016x  preempts %d  witness %d slots%s%s@."
        (kind_name f.fl_kind) f.fl_status
        (f.fl_digest land max_int)
        f.fl_preempts
        (Array.length f.fl_decisions)
        (match f.fl_trace with Some p -> "\n    trace " ^ p | None -> "")
        (match f.fl_replay_ok with
        | Some true -> " (replays identically)"
        | Some false -> " (REPLAY MISMATCH)"
        | None -> ""))
    r.rp_failures
