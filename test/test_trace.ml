(* Trace codec: tapes, varints, serialization, error handling. *)

open Tutil

module T = Dejavu.Trace

let mk ?(digest = "d") ?(analysis_hash = "") ?(switches = [||])
    ?(clocks = [||]) ?(inputs = [||]) ?(natives = [||]) ?(picks = [||]) () =
  {
    T.program_digest = digest;
    analysis_hash;
    switches;
    clocks;
    inputs;
    natives;
    picks;
  }

let trace_eq a b =
  a.T.program_digest = b.T.program_digest
  && a.T.analysis_hash = b.T.analysis_hash
  && a.T.switches = b.T.switches
  && a.T.clocks = b.T.clocks
  && a.T.inputs = b.T.inputs
  && a.T.natives = b.T.natives
  && a.T.picks = b.T.picks

(* --- Tape --------------------------------------------------------------- *)

let test_tape_push_read () =
  let t = T.Tape.create "t" in
  T.Tape.push t 1;
  T.Tape.push t 2;
  T.Tape.push t 3;
  Alcotest.(check int) "len" 3 (T.Tape.length t);
  Alcotest.(check int) "r1" 1 (T.Tape.read t);
  Alcotest.(check int) "r2" 2 (T.Tape.read t);
  Alcotest.(check int) "remaining" 1 (T.Tape.remaining t);
  Alcotest.(check int) "r3" 3 (T.Tape.read t);
  match T.Tape.read t with
  | exception T.End_of_tape "t" -> ()
  | _ -> Alcotest.fail "no end-of-tape"

let test_tape_growth () =
  let t = T.Tape.create "g" in
  for k = 0 to 9999 do
    T.Tape.push t k
  done;
  Alcotest.(check int) "len" 10000 (T.Tape.length t);
  let arr = T.Tape.to_array t in
  Alcotest.(check int) "arr len" 10000 (Array.length arr);
  Alcotest.(check int) "arr contents" 1234 arr.(1234)

let test_tape_read_opt () =
  let t = T.Tape.of_array "o" [| 5 |] in
  Alcotest.(check (option int)) "some" (Some 5) (T.Tape.read_opt t);
  Alcotest.(check (option int)) "none" None (T.Tape.read_opt t)

(* --- varints ------------------------------------------------------------ *)

let varint_roundtrip v =
  let buf = Buffer.create 16 in
  T.put_varint buf v;
  let got, pos = T.get_varint (Buffer.contents buf) 0 in
  Alcotest.(check int) (Fmt.str "varint %d" v) v got;
  Alcotest.(check int) "consumed all" (Buffer.length buf) pos

let test_varint_edges () =
  List.iter varint_roundtrip
    [ 0; 1; -1; 2; -2; 63; 64; -64; -65; 127; 128; 1 lsl 30; -(1 lsl 30);
      max_int; min_int; max_int - 1; min_int + 1 ]

let test_varint_truncated () =
  let buf = Buffer.create 16 in
  T.put_varint buf max_int;
  let s = Buffer.contents buf in
  let truncated = String.sub s 0 (String.length s - 1) in
  match T.get_varint truncated 0 with
  | exception T.Format_error _ -> ()
  | _ -> Alcotest.fail "truncated varint accepted"

(* --- whole-trace serialization ------------------------------------------ *)

let test_roundtrip_empty () =
  let t = mk () in
  Alcotest.(check bool) "rt" true (trace_eq t (T.of_bytes (T.to_bytes t)))

let test_roundtrip_full () =
  let t =
    mk ~digest:(String.make 32 'a')
      ~switches:[| 1; 2; 3; 1000000 |]
      ~clocks:[| 0; 5; 1; 700; 2; 800 |]
      ~inputs:[| -5; 0; max_int |]
      ~natives:[| 1; 1; 42; 0 |]
      ()
  in
  Alcotest.(check bool) "rt" true (trace_eq t (T.of_bytes (T.to_bytes t)))

(* The picks stream (explorer-steered dispatch) is an OPTIONAL trailing
   section: a picks-free trace encodes exactly as before this stream
   existed (four sections — byte-compatibility with old trace files), and
   a picks-bearing trace roundtrips through both codecs. *)
let test_picks_optional_section () =
  let plain = mk ~switches:[| 1; 2 |] () in
  let with_picks = mk ~switches:[| 1; 2 |] ~picks:[| 1; 2; 1 |] () in
  Alcotest.(check bool)
    "picks add bytes" true
    (String.length (T.to_bytes with_picks) > String.length (T.to_bytes plain));
  (* a 4-section encoding parses with empty picks *)
  let reparsed = T.of_bytes (T.to_bytes plain) in
  Alcotest.(check bool) "legacy parse" true (reparsed.T.picks = [||]);
  Alcotest.(check bool)
    "picks roundtrip" true
    (trace_eq with_picks (T.of_bytes (T.to_bytes with_picks)));
  Alcotest.(check int)
    "sizes counts picks" 3 (T.sizes with_picks).T.n_picks

let test_bad_magic () =
  match T.of_bytes "NOPE\nxxxxx" with
  | exception T.Format_error _ -> ()
  | _ -> Alcotest.fail "bad magic accepted"

let test_trailing_bytes () =
  let s = T.to_bytes (mk ()) ^ "junk" in
  match T.of_bytes s with
  | exception T.Format_error _ -> ()
  | _ -> Alcotest.fail "trailing bytes accepted"

let test_truncation () =
  let s = T.to_bytes (mk ~switches:[| 1; 2; 3 |] ()) in
  let s = String.sub s 0 (String.length s - 2) in
  match T.of_bytes s with
  | exception T.Format_error _ -> ()
  | _ -> Alcotest.fail "truncated trace accepted"

let test_save_load () =
  let t = mk ~switches:[| 9; 8; 7 |] ~inputs:[| 1 |] () in
  let path = Filename.temp_file "trace" ".djv" in
  T.save path t;
  let t' = T.load path in
  Sys.remove path;
  Alcotest.(check bool) "rt" true (trace_eq t t')

(* --- native outcome encoding --------------------------------------------- *)

let test_native_outcome_codec () =
  let tape = T.Tape.create "n" in
  let o1 = { Vm.Rt.no_result = Some 42; no_callbacks = [ (3, [| 1; 2 |]); (5, [||]) ] } in
  let o2 = { Vm.Rt.no_result = None; no_callbacks = [] } in
  T.push_native_outcome tape 7 o1;
  T.push_native_outcome tape 9 o2;
  let id1, got1 = T.read_native_outcome tape in
  let id2, got2 = T.read_native_outcome tape in
  Alcotest.(check int) "id1" 7 id1;
  Alcotest.(check int) "id2" 9 id2;
  Alcotest.(check bool) "o1" true (got1 = o1);
  Alcotest.(check bool) "o2" true (got2 = o2);
  Alcotest.(check int) "consumed" 0 (T.Tape.remaining tape)

let test_sizes () =
  let t =
    mk ~switches:[| 1; 2 |] ~clocks:[| 0; 1; 1; 2 |] ~inputs:[| 3 |]
      ~natives:[| 1; 0; 0 |] ()
  in
  let s = T.sizes t in
  Alcotest.(check int) "switches" 2 s.T.n_switches;
  Alcotest.(check int) "clock reads" 2 s.T.n_clock_reads;
  Alcotest.(check int) "inputs" 1 s.T.n_inputs;
  Alcotest.(check int) "native words" 3 s.T.n_native_words;
  Alcotest.(check int) "total" 10 s.T.total_words;
  Alcotest.(check bool) "bytes positive" true (s.T.total_bytes > 0)

let test_reason_tags () =
  Alcotest.(check int) "app" 0 (T.tag_of_reason Vm.Rt.Capp);
  Alcotest.(check int) "sched" 1 (T.tag_of_reason Vm.Rt.Csched);
  Alcotest.(check int) "idle" 2 (T.tag_of_reason (Vm.Rt.Cidle 7));
  Alcotest.(check string) "name" "sched" (T.reason_name 1)

(* --- streaming writer / reader ----------------------------------------- *)

let with_tmp f =
  let path = Filename.temp_file "dvtest" ".trace" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let sample_trace () =
  mk ~digest:"prog" ~analysis_hash:"audit"
    ~switches:[| 3; 0; 150; 4096; 1 |]
    ~clocks:[| 0; 5; 1; 70000; 2; 123456789 |]
    ~inputs:[| 42; -17; 0 |]
    ~natives:[| 1; 0; 0; 2; 1; 99 |]
    ()

(* satellite: sizes must not re-serialize — encoded_size is arithmetic and
   must agree byte-for-byte with the real serialization *)
let test_encoded_size () =
  List.iter
    (fun t ->
      Alcotest.(check int)
        "encoded_size = |to_bytes|"
        (String.length (T.to_bytes t))
        (T.encoded_size t);
      Alcotest.(check int)
        "sizes.total_bytes agrees"
        (String.length (T.to_bytes t))
        (T.sizes t).T.total_bytes)
    [ mk (); sample_trace () ]

(* feed a materialized trace through the streaming writer and check the
   file is byte-identical to the batch serialization *)
let stream_out path (t : T.t) ~buf_words =
  let w = T.Writer.create ~buf_words path in
  let tp = T.Writer.tapes w in
  Array.iter (fun v -> T.Tape.push tp.(0) v) t.T.switches;
  Array.iter (fun v -> T.Tape.push tp.(1) v) t.T.clocks;
  Array.iter (fun v -> T.Tape.push tp.(2) v) t.T.inputs;
  Array.iter (fun v -> T.Tape.push tp.(3) v) t.T.natives;
  T.Writer.finish w ~program_digest:t.T.program_digest
    ~analysis_hash:t.T.analysis_hash

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let test_writer_byte_identity () =
  let t = sample_trace () in
  with_tmp (fun path ->
      (* tiny buffer: force many sink flushes mid-stream *)
      let sizes = stream_out path t ~buf_words:2 in
      Alcotest.(check string)
        "streamed file = to_bytes" (T.to_bytes t) (read_file path);
      Alcotest.(check int)
        "incremental total_bytes"
        (String.length (T.to_bytes t))
        sizes.T.total_bytes)

let test_writer_bounded_buffer () =
  let t = sample_trace () in
  with_tmp (fun path ->
      (* with_tmp pre-creates an empty file; remove it so "no partial trace
         after abort" is observable as absence *)
      Sys.remove path;
      let w = T.Writer.create ~buf_words:2 path in
      let tp = T.Writer.tapes w in
      Array.iter (fun v -> T.Tape.push tp.(0) v) t.T.switches;
      Array.iter (fun v -> T.Tape.push tp.(3) v) t.T.natives;
      let peak = T.Writer.peak_buffered_words w in
      Alcotest.(check bool)
        (Fmt.str "peak %d bounded by 4 x cap" peak)
        true
        (peak <= 4 * 2);
      T.Writer.abort w;
      Alcotest.(check bool) "abort leaves no file" false (Sys.file_exists path))

let test_reader_roundtrip () =
  let t = sample_trace () in
  with_tmp (fun path ->
      ignore (stream_out path t ~buf_words:3);
      (* chunk of 2: every tape refills repeatedly *)
      let r = T.Reader.open_file ~chunk_words:2 path in
      Fun.protect
        ~finally:(fun () -> T.Reader.close r)
        (fun () ->
          Alcotest.(check string)
            "digest" t.T.program_digest (T.Reader.program_digest r);
          Alcotest.(check string)
            "audit" t.T.analysis_hash (T.Reader.analysis_hash r);
          let tp = T.Reader.tapes r in
          let drain k =
            Array.init (T.Tape.remaining tp.(k)) (fun _ -> T.Tape.read tp.(k))
          in
          Alcotest.(check bool) "switches" true (drain 0 = t.T.switches);
          Alcotest.(check bool) "clocks" true (drain 1 = t.T.clocks);
          Alcotest.(check bool) "inputs" true (drain 2 = t.T.inputs);
          Alcotest.(check bool) "natives" true (drain 3 = t.T.natives)))

(* a loadable file, then truncated at every prefix length: the reader must
   raise Format_error (or report end-of-tape mid-read), never crash *)
let test_reader_truncation () =
  let t = sample_trace () in
  with_tmp (fun path ->
      ignore (stream_out path t ~buf_words:64);
      let whole = read_file path in
      for cut = 0 to String.length whole - 1 do
        let part = String.sub whole 0 cut in
        let oc = open_out_bin path in
        output_string oc part;
        close_out oc;
        match T.Reader.open_file ~chunk_words:2 path with
        | exception T.Format_error _ -> ()
        | r ->
          (* header + counts parsed: reading past the cut must fail
             cleanly, not crash *)
          Fun.protect
            ~finally:(fun () -> T.Reader.close r)
            (fun () ->
              match
                Array.iter
                  (fun tp ->
                    while T.Tape.remaining tp > 0 do
                      ignore (T.Tape.read tp)
                    done)
                  (T.Reader.tapes r)
              with
              | () -> Alcotest.fail (Fmt.str "cut %d read fully" cut)
              | exception T.Format_error _ -> ()
              | exception T.End_of_tape _ -> ())
      done)

let test_reader_corrupt () =
  let t = sample_trace () in
  with_tmp (fun path ->
      ignore (stream_out path t ~buf_words:64);
      let whole = Bytes.of_string (read_file path) in
      (* smash a byte in the middle of the sections *)
      let mid = Bytes.length whole / 2 in
      Bytes.set whole mid '\xff';
      let oc = open_out_bin path in
      output_bytes oc whole;
      close_out oc;
      match T.Reader.open_file ~chunk_words:2 path with
      | exception T.Format_error _ -> ()
      | r ->
        Fun.protect
          ~finally:(fun () -> T.Reader.close r)
          (fun () ->
            match
              Array.iter
                (fun tp ->
                  while T.Tape.remaining tp > 0 do
                    ignore (T.Tape.read tp)
                  done)
                (T.Reader.tapes r)
            with
            | () -> () (* a flipped bit can still decode; fine *)
            | exception T.Format_error _ -> ()
            | exception T.End_of_tape _ -> ()))

let () =
  Alcotest.run "trace"
    [
      ( "tape",
        [
          quick "push/read" test_tape_push_read;
          quick "growth" test_tape_growth;
          quick "read_opt" test_tape_read_opt;
        ] );
      ( "varint",
        [ quick "edges" test_varint_edges; quick "truncated" test_varint_truncated ] );
      ( "codec",
        [
          quick "roundtrip empty" test_roundtrip_empty;
          quick "roundtrip full" test_roundtrip_full;
          quick "picks optional section" test_picks_optional_section;
          quick "bad magic" test_bad_magic;
          quick "trailing bytes" test_trailing_bytes;
          quick "truncation" test_truncation;
          quick "save/load" test_save_load;
          quick "native outcomes" test_native_outcome_codec;
          quick "sizes" test_sizes;
          quick "reason tags" test_reason_tags;
        ] );
      ( "streaming",
        [
          quick "encoded size" test_encoded_size;
          quick "writer byte identity" test_writer_byte_identity;
          quick "writer bounded buffer" test_writer_bounded_buffer;
          quick "reader roundtrip" test_reader_roundtrip;
          quick "reader truncation" test_reader_truncation;
          quick "reader corrupt" test_reader_corrupt;
        ] );
    ]
