(* Boot-image construction: class ids, field flattening, vtables, subtype
   displays, statics allotment, string-literal pools — plus environment
   mechanics (clock, timer, inputs) and the PRNG. *)

open Tutil

let vm_of prog = Vm.create prog

let class_of vm name = Vm.Rt.the_class vm (Vm.Rt.class_id vm name)

let test_builtin_ids () =
  let vm = vm_of (main_prog [ i I.Ret ]) in
  Alcotest.(check int) "Object is cid 0" 0 (Vm.Rt.class_id vm "Object");
  Alcotest.(check bool) "String registered" true
    (Vm.Rt.class_id vm "String" > 0);
  Alcotest.(check bool) "Throwable registered" true
    (Vm.Rt.class_id vm "Throwable" > 0);
  List.iter
    (fun n -> ignore (Vm.Rt.class_id vm n))
    Bytecode.Decl.exception_classes

let test_field_flattening () =
  let extra =
    [
      D.cdecl "A" ~fields:[ D.field "a1"; D.field ~ty:I.Tref "a2" ] [];
      D.cdecl ~super:"A" "B" ~fields:[ D.field "b1" ] [];
    ]
  in
  let vm = vm_of (main_prog ~extra_classes:extra [ i I.Ret ]) in
  let b = class_of vm "B" in
  Alcotest.(check int) "three fields" 3 (Array.length b.rc_fields);
  Alcotest.(check string) "inherited first" "a1" (fst b.rc_fields.(0));
  Alcotest.(check string) "own last" "b1" (fst b.rc_fields.(2));
  Alcotest.(check int) "index of a2" 1 (Hashtbl.find b.rc_field_index "a2")

let test_vtable_override () =
  let m name body =
    A.method_ ~static:false ~args:[ I.Tobj name ] ~ret:I.Tint ~nlocals:1 "f" body
  in
  let extra =
    [
      D.cdecl "P" [ m "P" [ i (I.Const 1); i I.Retv ] ];
      D.cdecl ~super:"P" "Q" [ m "P" [ i (I.Const 2); i I.Retv ] ];
      D.cdecl ~super:"Q" "R" [];
    ]
  in
  let vm = vm_of (main_prog ~extra_classes:extra [ i I.Ret ]) in
  let p = class_of vm "P" and q = class_of vm "Q" and r = class_of vm "R" in
  Alcotest.(check int) "same slot count" (Array.length p.rc_vtable)
    (Array.length q.rc_vtable);
  let slot = Hashtbl.find p.rc_vslot_of "f" in
  Alcotest.(check bool) "Q overrides" true
    (q.rc_vtable.(slot) <> p.rc_vtable.(slot));
  Alcotest.(check int) "R inherits Q's" q.rc_vtable.(slot) r.rc_vtable.(slot)

let test_override_signature_mismatch () =
  let extra =
    [
      D.cdecl "P"
        [ A.method_ ~static:false ~args:[ I.Tobj "P" ] ~nlocals:1 "f" [ i I.Ret ] ];
      D.cdecl ~super:"P" "Q"
        [
          A.method_ ~static:false ~args:[ I.Tobj "Q"; I.Tint ] ~nlocals:2 "f"
            [ i I.Ret ];
        ];
    ]
  in
  match vm_of (main_prog ~extra_classes:extra [ i I.Ret ]) with
  | exception Vm.Link.Error _ -> ()
  | _ -> Alcotest.fail "bad override accepted"

let test_subtype_display () =
  let extra =
    [ D.cdecl "P" []; D.cdecl ~super:"P" "Q" []; D.cdecl ~super:"Q" "R" [];
      D.cdecl "X" [] ]
  in
  let vm = vm_of (main_prog ~extra_classes:extra [ i I.Ret ]) in
  let id n = Vm.Rt.class_id vm n in
  Alcotest.(check bool) "R <= P" true
    (Vm.Rt.is_subclass vm ~sub:(id "R") ~sup:(id "P"));
  Alcotest.(check bool) "P <= Object" true
    (Vm.Rt.is_subclass vm ~sub:(id "P") ~sup:0);
  Alcotest.(check bool) "P not <= R" false
    (Vm.Rt.is_subclass vm ~sub:(id "P") ~sup:(id "R"));
  Alcotest.(check bool) "X not <= P" false
    (Vm.Rt.is_subclass vm ~sub:(id "X") ~sup:(id "P"));
  Alcotest.(check int) "lca R X = Object" 0 (Vm.Rt.lca vm (id "R") (id "X"));
  Alcotest.(check int) "lca R Q = Q" (id "Q") (Vm.Rt.lca vm (id "R") (id "Q"))

let test_statics_allotment () =
  let extra =
    [
      D.cdecl "A" ~statics:[ D.field "x"; D.field ~ty:I.Tref "y" ] [];
      D.cdecl "B" ~statics:[ D.field "z" ] [];
    ]
  in
  let vm = vm_of (main_prog ~extra_classes:extra [ i I.Ret ]) in
  let a = class_of vm "A" and b = class_of vm "B" in
  Alcotest.(check bool) "disjoint bases" true
    (a.rc_statics_base <> b.rc_statics_base);
  Alcotest.(check bool) "ref flag derived" true
    vm.Vm.Rt.global_refs.(a.rc_statics_base + 1);
  Alcotest.(check bool) "int flag derived" false
    vm.Vm.Rt.global_refs.(a.rc_statics_base)

let test_string_pool () =
  let m =
    A.method_ ~nlocals:0 "main"
      [
        i (I.Sconst "a");
        i I.Pop;
        i (I.Sconst "b");
        i I.Pop;
        i (I.Sconst "a");
        i I.Pop;
        i I.Ret;
      ]
  in
  let vm = vm_of (prog1 [ m ]) in
  let t = class_of vm "T" in
  Alcotest.(check int) "distinct literals pooled" 2
    (Array.length t.rc_string_lits)

let test_lazy_initialization () =
  (* classes are registered at boot but initialized only on first use *)
  let extra = [ D.cdecl "Lazy" ~statics:[ D.field "v" ] [] ] in
  let vm = vm_of (main_prog ~extra_classes:extra [ i I.Ret ]) in
  ignore (Vm.run vm);
  Alcotest.(check bool) "untouched class never initialized" true
    ((class_of vm "Lazy").rc_state = Vm.Rt.Registered)

(* --- env -------------------------------------------------------------- *)

let test_env_tick_advances () =
  let env = Vm.Env.create Vm.Env.default_config in
  let t0 = Vm.Env.read_clock env in
  let fired = ref 0 in
  for _ = 1 to 10_000 do
    if Vm.Env.tick env then incr fired
  done;
  (* read_clock materializes the lazily deferred ticks *)
  Alcotest.(check bool) "clock advanced" true (Vm.Env.read_clock env > t0);
  Alcotest.(check bool) "timer fired" true (!fired > 0);
  Alcotest.(check int) "fires counted" !fired env.timer_fires

let test_env_determinism () =
  let run_ticks seed =
    let env = Vm.Env.create { Vm.Env.default_config with seed } in
    for _ = 1 to 5_000 do
      ignore (Vm.Env.tick env)
    done;
    (Vm.Env.read_clock env, env.timer_fires)
  in
  Alcotest.(check bool) "same seed same trajectory" true
    (run_ticks 42 = run_ticks 42);
  Alcotest.(check bool) "different seed different trajectory" true
    (run_ticks 42 <> run_ticks 43)

let test_env_scripted_inputs () =
  let env = Vm.Env.create ~inputs:[ 7; 8 ] Vm.Env.default_config in
  Alcotest.(check int) "first" 7 (Vm.Env.read_input env);
  Alcotest.(check int) "second" 8 (Vm.Env.read_input env);
  (* afterwards: the seeded stream, still deterministic *)
  let v1 = Vm.Env.read_input env in
  let env2 = Vm.Env.create ~inputs:[ 7; 8 ] Vm.Env.default_config in
  ignore (Vm.Env.read_input env2);
  ignore (Vm.Env.read_input env2);
  Alcotest.(check int) "stream deterministic" v1 (Vm.Env.read_input env2)

let test_env_idle () =
  let env = Vm.Env.create Vm.Env.default_config in
  let t = Vm.Env.idle_until env 500_000 in
  Alcotest.(check int) "advanced to target" 500_000 t;
  Alcotest.(check int) "no going back" 500_000 (Vm.Env.idle_until env 100)

let test_prng () =
  let a = Vm.Prng.create 1 and b = Vm.Prng.create 1 in
  let xs = List.init 100 (fun _ -> Vm.Prng.int a 1000) in
  let ys = List.init 100 (fun _ -> Vm.Prng.int b 1000) in
  Alcotest.(check bool) "deterministic" true (xs = ys);
  Alcotest.(check bool) "in range" true (List.for_all (fun x -> x >= 0 && x < 1000) xs);
  let c = Vm.Prng.copy a in
  Alcotest.(check int) "copy independent" (Vm.Prng.int a 97) (Vm.Prng.int c 97)

let () =
  Alcotest.run "link-env"
    [
      ( "link",
        [
          quick "builtin ids" test_builtin_ids;
          quick "field flattening" test_field_flattening;
          quick "vtable override" test_vtable_override;
          quick "bad override rejected" test_override_signature_mismatch;
          quick "subtype display / lca" test_subtype_display;
          quick "statics allotment" test_statics_allotment;
          quick "string pool" test_string_pool;
          quick "lazy initialization" test_lazy_initialization;
        ] );
      ( "env",
        [
          quick "tick advances" test_env_tick_advances;
          quick "determinism" test_env_determinism;
          quick "scripted inputs" test_env_scripted_inputs;
          quick "idle" test_env_idle;
          quick "prng" test_prng;
        ] );
    ]
