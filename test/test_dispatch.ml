(* Dispatch-loop specialization checks: the interpreter picks a fast loop
   when no observer is attached and an observed loop when one is, and the
   two must be semantically indistinguishable — same outputs, same state
   digests, same recorded traces, same event sequences. *)

open Tutil

let all () = Lazy.force Workloads.Registry.all

let seeded seed =
  {
    Vm.Rt.default_config with
    Vm.Rt.env_cfg = { Vm.Rt.default_config.Vm.Rt.env_cfg with Vm.Env.seed };
  }

(* Live run under the observed loop: attach an observer before booting. *)
let run_observed ?max_events ~natives ~seed program =
  let vm = Vm.create ~config:(seeded seed) ~natives program in
  let obs =
    match max_events with
    | None -> Vm.Observer.attach_digest vm
    | Some m -> Vm.Observer.attach_collect ~max_events:m vm
  in
  ignore (Vm.run vm);
  (vm, obs)

(* Fast loop vs observed loop: a hook that only reads events must not
   change the execution it observes. *)
let test_fast_vs_observed_live () =
  List.iter
    (fun (e : Workloads.Registry.entry) ->
      List.iter
        (fun seed ->
          let fast, fast_st = run ~natives:e.natives ~seed e.program in
          let obs_vm, obs = run_observed ~natives:e.natives ~seed e.program in
          let ctx = Fmt.str "%s/%d" e.name seed in
          Alcotest.check status_testable (ctx ^ " status") fast_st
            (Vm.status obs_vm);
          Alcotest.(check string) (ctx ^ " output") (Vm.output fast)
            (Vm.output obs_vm);
          Alcotest.(check int) (ctx ^ " state digest") (Vm.digest fast)
            (Vm.digest obs_vm);
          Alcotest.(check int)
            (ctx ^ " one event per instruction")
            (Vm.stats obs_vm).n_instr (Vm.Observer.count obs))
        [ 1; 3 ])
    (all ())

(* Record/replay under the observed loop: the roundtrip's event digests
   must agree for every catalogued workload. *)
let test_roundtrip_digests_observed () =
  List.iter
    (fun (e : Workloads.Registry.entry) ->
      let rt = Dejavu.verify_roundtrip ~natives:e.natives ~seed:3 e.program in
      Alcotest.(check bool)
        (e.name ^ " events equal")
        true rt.Dejavu.events_equal;
      Alcotest.(check bool) (e.name ^ " roundtrip ok") true (Dejavu.ok rt))
    (all ())

(* Cross-loop recording: a trace recorded under the fast loop (observer
   detached) must be byte-identical to one recorded under the observed
   loop, and replaying it with an observer must reproduce the observed
   recording's event digest. *)
let test_fast_recorded_trace_matches () =
  List.iter
    (fun (e : Workloads.Registry.entry) ->
      let obs_run, obs_trace =
        Dejavu.record ~natives:e.natives ~seed:1 e.program
      in
      let fast_run, fast_trace =
        Dejavu.record ~natives:e.natives ~seed:1 ~observe:false e.program
      in
      Alcotest.(check string)
        (e.name ^ " trace bytes")
        (Dejavu.Trace.to_bytes obs_trace)
        (Dejavu.Trace.to_bytes fast_trace);
      Alcotest.(check int)
        (e.name ^ " fast record leaves no digest")
        0 fast_run.Dejavu.obs_count;
      let replayed, leftovers =
        Dejavu.replay ~natives:e.natives e.program fast_trace
      in
      Alcotest.(check (list string)) (e.name ^ " trace consumed") [] leftovers;
      Alcotest.(check int)
        (e.name ^ " replay digest vs observed record")
        obs_run.Dejavu.obs_digest replayed.Dejavu.obs_digest;
      Alcotest.(check int)
        (e.name ^ " replay count vs observed record")
        obs_run.Dejavu.obs_count replayed.Dejavu.obs_count)
    (all ())

(* Fused vs unfused compilation: [cfg.fuse] only decides whether the
   executed stream (k_fused) carries superinstructions; every observable —
   status, output, state digest, instruction count, event sequence, and
   recorded trace bytes — must be identical across the whole catalogue,
   and traces recorded under one setting must replay under the other. *)
let unfused = { Vm.Rt.default_config with Vm.Rt.fuse = false }

let test_fused_vs_unfused_live () =
  List.iter
    (fun (e : Workloads.Registry.entry) ->
      List.iter
        (fun seed ->
          let f, f_st = run ~natives:e.natives ~seed e.program in
          let u, u_st = run ~config:unfused ~natives:e.natives ~seed e.program in
          let ctx = Fmt.str "%s/%d" e.name seed in
          Alcotest.check status_testable (ctx ^ " status") u_st f_st;
          Alcotest.(check string) (ctx ^ " output") (Vm.output u) (Vm.output f);
          Alcotest.(check int) (ctx ^ " state digest") (Vm.digest u)
            (Vm.digest f);
          Alcotest.(check int)
            (ctx ^ " instruction count")
            (Vm.stats u).n_instr (Vm.stats f).n_instr)
        [ 1; 3 ])
    (all ())

let test_fused_vs_unfused_traces () =
  List.iter
    (fun (e : Workloads.Registry.entry) ->
      let fr, ft = Dejavu.record ~natives:e.natives ~seed:1 e.program in
      let ur, ut =
        Dejavu.record ~config:unfused ~natives:e.natives ~seed:1 e.program
      in
      Alcotest.(check string)
        (e.name ^ " trace bytes")
        (Dejavu.Trace.to_bytes ut) (Dejavu.Trace.to_bytes ft);
      Alcotest.(check int) (e.name ^ " event digest") ur.Dejavu.obs_digest
        fr.Dejavu.obs_digest;
      Alcotest.(check int) (e.name ^ " event count") ur.Dejavu.obs_count
        fr.Dejavu.obs_count;
      (* cross-replay: a trace recorded fused replays unfused, and back *)
      let rep_u, left_u =
        Dejavu.replay ~config:unfused ~natives:e.natives e.program ft
      in
      Alcotest.(check (list string))
        (e.name ^ " fused->unfused consumed")
        [] left_u;
      Alcotest.(check int)
        (e.name ^ " fused->unfused events")
        fr.Dejavu.obs_digest rep_u.Dejavu.obs_digest;
      let rep_f, left_f = Dejavu.replay ~natives:e.natives e.program ut in
      Alcotest.(check (list string))
        (e.name ^ " unfused->fused consumed")
        [] left_f;
      Alcotest.(check int)
        (e.name ^ " unfused->fused events")
        ur.Dejavu.obs_digest rep_f.Dejavu.obs_digest;
      Alcotest.(check int)
        (e.name ^ " replay state digest")
        rep_u.Dejavu.state_digest rep_f.Dejavu.state_digest)
    (all ())

(* Collecting and digesting observers fold the same hash; the collection
   cap bounds retention only, never the digest or the true count. *)
let test_collect_matches_digest () =
  let e =
    match Workloads.Registry.find "ring" with
    | Some e -> e
    | None -> Alcotest.fail "ring workload missing"
  in
  let _, dig = run_observed ~natives:e.natives ~seed:2 e.program in
  let _, col = run_observed ~max_events:max_int ~natives:e.natives ~seed:2 e.program in
  Alcotest.(check int) "digest" (Vm.Observer.digest dig)
    (Vm.Observer.digest col);
  Alcotest.(check int) "count" (Vm.Observer.count dig) (Vm.Observer.count col);
  Alcotest.(check int) "nothing dropped" 0 (Vm.Observer.dropped col);
  Alcotest.(check int) "kept all events" (Vm.Observer.count col)
    (List.length (Vm.Observer.events col))

let test_collect_cap_semantics () =
  let e =
    match Workloads.Registry.find "ring" with
    | Some e -> e
    | None -> Alcotest.fail "ring workload missing"
  in
  let _, dig = run_observed ~natives:e.natives ~seed:2 e.program in
  let cap = 100 in
  let _, col = run_observed ~max_events:cap ~natives:e.natives ~seed:2 e.program in
  let total = Vm.Observer.count dig in
  Alcotest.(check bool) "workload exceeds cap" true (total > cap);
  Alcotest.(check int) "digest exact past cap" (Vm.Observer.digest dig)
    (Vm.Observer.digest col);
  Alcotest.(check int) "true count past cap" total (Vm.Observer.count col);
  Alcotest.(check int) "dropped = count - kept" (total - cap)
    (Vm.Observer.dropped col);
  Alcotest.(check int) "kept exactly the cap" cap
    (List.length (Vm.Observer.events col))

let () =
  Alcotest.run "dispatch"
    [
      ( "loops",
        [
          quick "fast vs observed live" test_fast_vs_observed_live;
          quick "roundtrip digests (observed)" test_roundtrip_digests_observed;
          quick "fast-recorded trace matches" test_fast_recorded_trace_matches;
        ] );
      ( "fusion",
        [
          quick "fused vs unfused live" test_fused_vs_unfused_live;
          quick "fused vs unfused traces" test_fused_vs_unfused_traces;
        ] );
      ( "observer",
        [
          quick "collect matches digest" test_collect_matches_digest;
          quick "cap: digest, count, dropped" test_collect_cap_semantics;
        ] );
    ]
