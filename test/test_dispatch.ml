(* Dispatch-loop specialization checks: the interpreter picks a fast loop
   when no observer is attached and an observed loop when one is, and the
   two must be semantically indistinguishable — same outputs, same state
   digests, same recorded traces, same event sequences. *)

open Tutil

let all () = Lazy.force Workloads.Registry.all

let seeded seed =
  {
    Vm.Rt.default_config with
    Vm.Rt.env_cfg = { Vm.Rt.default_config.Vm.Rt.env_cfg with Vm.Env.seed };
  }

(* Live run under the observed loop: attach an observer before booting. *)
let run_observed ?max_events ~natives ~seed program =
  let vm = Vm.create ~config:(seeded seed) ~natives program in
  let obs =
    match max_events with
    | None -> Vm.Observer.attach_digest vm
    | Some m -> Vm.Observer.attach_collect ~max_events:m vm
  in
  ignore (Vm.run vm);
  (vm, obs)

(* Fast loop vs observed loop: a hook that only reads events must not
   change the execution it observes. *)
let test_fast_vs_observed_live () =
  List.iter
    (fun (e : Workloads.Registry.entry) ->
      List.iter
        (fun seed ->
          let fast, fast_st = run ~natives:e.natives ~seed e.program in
          let obs_vm, obs = run_observed ~natives:e.natives ~seed e.program in
          let ctx = Fmt.str "%s/%d" e.name seed in
          Alcotest.check status_testable (ctx ^ " status") fast_st
            (Vm.status obs_vm);
          Alcotest.(check string) (ctx ^ " output") (Vm.output fast)
            (Vm.output obs_vm);
          Alcotest.(check int) (ctx ^ " state digest") (Vm.digest fast)
            (Vm.digest obs_vm);
          Alcotest.(check int)
            (ctx ^ " one event per instruction")
            (Vm.stats obs_vm).n_instr (Vm.Observer.count obs))
        [ 1; 3 ])
    (all ())

(* Record/replay under the observed loop: the roundtrip's event digests
   must agree for every catalogued workload. *)
let test_roundtrip_digests_observed () =
  List.iter
    (fun (e : Workloads.Registry.entry) ->
      let rt = Dejavu.verify_roundtrip ~natives:e.natives ~seed:3 e.program in
      Alcotest.(check bool)
        (e.name ^ " events equal")
        true rt.Dejavu.events_equal;
      Alcotest.(check bool) (e.name ^ " roundtrip ok") true (Dejavu.ok rt))
    (all ())

(* Cross-loop recording: a trace recorded under the fast loop (observer
   detached) must be byte-identical to one recorded under the observed
   loop, and replaying it with an observer must reproduce the observed
   recording's event digest. *)
let test_fast_recorded_trace_matches () =
  List.iter
    (fun (e : Workloads.Registry.entry) ->
      let obs_run, obs_trace =
        Dejavu.record ~natives:e.natives ~seed:1 e.program
      in
      let fast_run, fast_trace =
        Dejavu.record ~natives:e.natives ~seed:1 ~observe:false e.program
      in
      Alcotest.(check string)
        (e.name ^ " trace bytes")
        (Dejavu.Trace.to_bytes obs_trace)
        (Dejavu.Trace.to_bytes fast_trace);
      Alcotest.(check int)
        (e.name ^ " fast record leaves no digest")
        0 fast_run.Dejavu.obs_count;
      let replayed, leftovers =
        Dejavu.replay ~natives:e.natives e.program fast_trace
      in
      Alcotest.(check (list string)) (e.name ^ " trace consumed") [] leftovers;
      Alcotest.(check int)
        (e.name ^ " replay digest vs observed record")
        obs_run.Dejavu.obs_digest replayed.Dejavu.obs_digest;
      Alcotest.(check int)
        (e.name ^ " replay count vs observed record")
        obs_run.Dejavu.obs_count replayed.Dejavu.obs_count)
    (all ())

(* Fused vs unfused compilation: [cfg.fuse] only decides whether the
   executed stream (k_fused) carries superinstructions; every observable —
   status, output, state digest, instruction count, event sequence, and
   recorded trace bytes — must be identical across the whole catalogue,
   and traces recorded under one setting must replay under the other. *)
let unfused = { Vm.Rt.default_config with Vm.Rt.fuse = false }

let test_fused_vs_unfused_live () =
  List.iter
    (fun (e : Workloads.Registry.entry) ->
      List.iter
        (fun seed ->
          let f, f_st = run ~natives:e.natives ~seed e.program in
          let u, u_st = run ~config:unfused ~natives:e.natives ~seed e.program in
          let ctx = Fmt.str "%s/%d" e.name seed in
          Alcotest.check status_testable (ctx ^ " status") u_st f_st;
          Alcotest.(check string) (ctx ^ " output") (Vm.output u) (Vm.output f);
          Alcotest.(check int) (ctx ^ " state digest") (Vm.digest u)
            (Vm.digest f);
          Alcotest.(check int)
            (ctx ^ " instruction count")
            (Vm.stats u).n_instr (Vm.stats f).n_instr)
        [ 1; 3 ])
    (all ())

let test_fused_vs_unfused_traces () =
  List.iter
    (fun (e : Workloads.Registry.entry) ->
      let fr, ft = Dejavu.record ~natives:e.natives ~seed:1 e.program in
      let ur, ut =
        Dejavu.record ~config:unfused ~natives:e.natives ~seed:1 e.program
      in
      Alcotest.(check string)
        (e.name ^ " trace bytes")
        (Dejavu.Trace.to_bytes ut) (Dejavu.Trace.to_bytes ft);
      Alcotest.(check int) (e.name ^ " event digest") ur.Dejavu.obs_digest
        fr.Dejavu.obs_digest;
      Alcotest.(check int) (e.name ^ " event count") ur.Dejavu.obs_count
        fr.Dejavu.obs_count;
      (* cross-replay: a trace recorded fused replays unfused, and back *)
      let rep_u, left_u =
        Dejavu.replay ~config:unfused ~natives:e.natives e.program ft
      in
      Alcotest.(check (list string))
        (e.name ^ " fused->unfused consumed")
        [] left_u;
      Alcotest.(check int)
        (e.name ^ " fused->unfused events")
        fr.Dejavu.obs_digest rep_u.Dejavu.obs_digest;
      let rep_f, left_f = Dejavu.replay ~natives:e.natives e.program ut in
      Alcotest.(check (list string))
        (e.name ^ " unfused->fused consumed")
        [] left_f;
      Alcotest.(check int)
        (e.name ^ " unfused->fused events")
        ur.Dejavu.obs_digest rep_f.Dejavu.obs_digest;
      Alcotest.(check int)
        (e.name ^ " replay state digest")
        rep_u.Dejavu.state_digest rep_f.Dejavu.state_digest)
    (all ())

(* Register tier vs stack tier: [cfg.regir] only decides whether verified
   methods additionally carry register-IR regions and whether the fast
   loop dispatches into them; every observable — status, output, state
   digest, instruction count, trace bytes, event digests — must be
   identical across the whole catalogue, and traces recorded under one
   tier must replay under the other. *)
let noregir = { Vm.Rt.default_config with Vm.Rt.regir = false }

let test_regir_vs_stack_live () =
  List.iter
    (fun (e : Workloads.Registry.entry) ->
      List.iter
        (fun seed ->
          let r, r_st = run ~natives:e.natives ~seed e.program in
          let s, s_st = run ~config:noregir ~natives:e.natives ~seed e.program in
          let ctx = Fmt.str "%s/%d" e.name seed in
          Alcotest.check status_testable (ctx ^ " status") s_st r_st;
          Alcotest.(check string) (ctx ^ " output") (Vm.output s) (Vm.output r);
          Alcotest.(check int) (ctx ^ " state digest") (Vm.digest s)
            (Vm.digest r);
          Alcotest.(check int)
            (ctx ^ " instruction count")
            (Vm.stats s).n_instr (Vm.stats r).n_instr;
          Alcotest.(check int)
            (ctx ^ " stack tier ran no regir")
            0
            (Vm.stats s).n_regir_instr)
        [ 1; 3 ])
    (all ())

let test_regir_vs_stack_traces () =
  List.iter
    (fun (e : Workloads.Registry.entry) ->
      let rr, rt = Dejavu.record ~natives:e.natives ~seed:1 e.program in
      let sr, st =
        Dejavu.record ~config:noregir ~natives:e.natives ~seed:1 e.program
      in
      Alcotest.(check string)
        (e.name ^ " trace bytes")
        (Dejavu.Trace.to_bytes st) (Dejavu.Trace.to_bytes rt);
      Alcotest.(check int) (e.name ^ " event digest") sr.Dejavu.obs_digest
        rr.Dejavu.obs_digest;
      Alcotest.(check int) (e.name ^ " event count") sr.Dejavu.obs_count
        rr.Dejavu.obs_count;
      (* cross-replay: a trace recorded on the register tier replays on the
         stack tier, and back *)
      let rep_s, left_s =
        Dejavu.replay ~config:noregir ~natives:e.natives e.program rt
      in
      Alcotest.(check (list string))
        (e.name ^ " regir->stack consumed")
        [] left_s;
      Alcotest.(check int)
        (e.name ^ " regir->stack events")
        rr.Dejavu.obs_digest rep_s.Dejavu.obs_digest;
      let rep_r, left_r = Dejavu.replay ~natives:e.natives e.program st in
      Alcotest.(check (list string))
        (e.name ^ " stack->regir consumed")
        [] left_r;
      Alcotest.(check int)
        (e.name ^ " stack->regir events")
        sr.Dejavu.obs_digest rep_r.Dejavu.obs_digest;
      Alcotest.(check int)
        (e.name ^ " replay state digest")
        rep_s.Dejavu.state_digest rep_r.Dejavu.state_digest)
    (all ())

(* One virtual call site in a loop over receivers cycling through [k]
   classes: the site's inline cache transitions mono -> poly (k = 3) or
   mono -> poly -> megamorphic (k = 6) mid-run, and the transitions must
   be invisible to recording — the IC lives outside the heap, digest, and
   trace. *)
let poly_prog k iters =
  let shape n =
    A.method_ ~static:false ~args:[ I.Tobj "Shape" ] ~ret:I.Tint ~nlocals:1
      "id"
      [ i (I.Const n); i I.Retv ]
  in
  let cname j = if j = 0 then "Shape" else Fmt.str "Shape%d" j in
  let extra =
    D.cdecl "Shape" [ shape 0 ]
    :: List.init (k - 1) (fun j ->
           D.cdecl ~super:"Shape" (cname (j + 1)) [ shape (j + 1) ])
  in
  let fills =
    List.concat
      (List.init k (fun j ->
           [
             i (I.Load 0); i (I.Const j); i (I.New (cname j)); i I.Astore;
           ]))
  in
  main_prog ~nlocals:3 ~extra_classes:extra
    ([ i (I.Const k); i (I.Newarray (I.Tobj "Shape")); i (I.Store 0) ]
    @ fills
    @ [
        i (I.Const 0); i (I.Store 1); i (I.Const 0); i (I.Store 2);
        l "loop";
        i (I.Load 1); i (I.Const iters); i (I.If (I.Ge, "end"));
        i (I.Load 2);
        i (I.Load 0); i (I.Load 1); i (I.Const k); i I.Rem; i I.Aload;
        i (I.Invoke ("Shape", "id"));
        i I.Add; i (I.Store 2);
        i (I.Load 1); i (I.Const 1); i I.Add; i (I.Store 1);
        i (I.Goto "loop");
        l "end";
        i (I.Load 2); i I.Print; i I.Ret;
      ])

(* The IC cell of main's one virtual call site (shared between the
   canonical stream and the register-IR region that ends at the call). *)
let main_ic (vm : Vm.t) =
  let found = ref None in
  Array.iter
    (fun (m : Vm.Rt.rmethod) ->
      if m.Vm.Rt.rm_name = "main" then
        match m.Vm.Rt.rm_compiled with
        | Some c ->
          Array.iter
            (fun ci ->
              match ci with
              | Vm.Rt.KInvokevirtual (_, _, _, ic) -> found := Some ic
              | _ -> ())
            c.Vm.Rt.k_code
        | None -> ())
    vm.Vm.Rt.methods;
  match !found with
  | Some ic -> ic
  | None -> Alcotest.fail "no virtual call site in main"

let test_poly_ic_transition () =
  let iters = 600 in
  (* k = 3: the site ends polymorphic (2..poly_limit entries) *)
  let p3 = poly_prog 3 iters in
  let vm3, st3 = run ~seed:1 p3 in
  Alcotest.check status_testable "k=3 finished" Vm.Rt.Finished st3;
  Alcotest.(check string)
    "k=3 output"
    (Fmt.str "%d\n" (iters / 3 * 3))
    (Vm.output vm3);
  let ic3 = main_ic vm3 in
  Alcotest.(check bool)
    "k=3 site is polymorphic" true
    (ic3.Vm.Rt.ic_n >= 2 && ic3.Vm.Rt.ic_n <= Vm.Rt.poly_limit);
  (* k = 6: past poly_limit, the site goes megamorphic *)
  let p6 = poly_prog 6 iters in
  let vm6, st6 = run ~seed:1 p6 in
  Alcotest.check status_testable "k=6 finished" Vm.Rt.Finished st6;
  Alcotest.(check string)
    "k=6 output"
    (Fmt.str "%d\n" (iters / 6 * 15))
    (Vm.output vm6);
  let ic6 = main_ic vm6 in
  Alcotest.(check int) "k=6 site is megamorphic" (-1) ic6.Vm.Rt.ic_n;
  (* the transitions happen mid-trace; recording must not see them *)
  List.iter
    (fun (name, p) ->
      let rr, rt = Dejavu.record ~seed:1 p in
      let sr, st = Dejavu.record ~config:noregir ~seed:1 p in
      Alcotest.(check string)
        (name ^ " trace bytes")
        (Dejavu.Trace.to_bytes st) (Dejavu.Trace.to_bytes rt);
      Alcotest.(check int)
        (name ^ " event digest")
        sr.Dejavu.obs_digest rr.Dejavu.obs_digest;
      Alcotest.(check int)
        (name ^ " state digest")
        sr.Dejavu.state_digest rr.Dejavu.state_digest)
    [ ("poly", p3); ("mega", p6) ]

(* Tiny-callee inlining: a hot loop over a 4-instruction static helper
   must splice the callee into the caller's region (the registry's
   helpers are all too big, synchronized, or polymorphic, so this
   directed program guards the mechanism), and the splice must be
   invisible to recording. *)
let tiny_call_prog iters =
  let inc =
    A.method_ ~args:[ I.Tint ] ~ret:I.Tint ~nlocals:1 "inc"
      [ i (I.Load 0); i (I.Const 1); i I.Add; i I.Retv ]
  in
  let main =
    A.method_ ~nlocals:2 "main"
      [
        i (I.Const 0); i (I.Store 0); i (I.Const 0); i (I.Store 1);
        l "loop";
        i (I.Load 1); i (I.Const iters); i (I.If (I.Ge, "end"));
        i (I.Load 0); i (I.Invoke ("T", "inc")); i (I.Store 0);
        i (I.Load 1); i (I.Const 1); i I.Add; i (I.Store 1);
        i (I.Goto "loop");
        l "end";
        i (I.Load 0); i I.Print; i I.Ret;
      ]
  in
  D.program ~main_class:"T" [ D.cdecl "T" [ inc; main ] ]

let test_tiny_callee_inlined () =
  let iters = 5000 in
  let p = tiny_call_prog iters in
  let live, st = run ~seed:1 p in
  Alcotest.check status_testable "finished" Vm.Rt.Finished st;
  Alcotest.(check string) "output" (Fmt.str "%d\n" iters) (Vm.output live);
  Alcotest.(check int)
    "every call spliced" iters
    (Vm.stats live).Vm.Rt.n_regir_inline;
  let rr, rt = Dejavu.record ~seed:1 p in
  let sr, st' = Dejavu.record ~config:noregir ~seed:1 p in
  Alcotest.(check string) "trace bytes" (Dejavu.Trace.to_bytes st')
    (Dejavu.Trace.to_bytes rt);
  Alcotest.(check int) "state digest" sr.Dejavu.state_digest
    rr.Dejavu.state_digest;
  Alcotest.(check int) "event digest" sr.Dejavu.obs_digest rr.Dejavu.obs_digest

(* Interrupts arriving mid-region at a monitor op: a tiny timer quantum
   lands preemption requests on monitorenter/monitorexit constantly, so
   the region fast path's continue-only-while-running guard is exercised
   at both ops (an enter that parks, an exit whose handoff readies a
   waiter, a preemption granted at the segment boundary). The register
   tier must stay invisible — same trace bytes, state digest, and event
   sequence — and its regions must actually cover the monitor ops. *)
let small_quantum seed =
  {
    Vm.Rt.default_config with
    Vm.Rt.env_cfg =
      {
        Vm.Rt.default_config.Vm.Rt.env_cfg with
        Vm.Env.seed;
        quantum = 60;
        quantum_jitter = 20;
      };
  }

let monitor_pingpong iters =
  let work =
    A.method_ ~nlocals:1 "work"
      [
        i (I.Const 0); i (I.Store 0);
        l "loop";
        i (I.Load 0); i (I.Const iters); i (I.If (I.Ge, "end"));
        i (I.Getstatic ("T", "r0")); i I.Monitorenter;
        i (I.Getstatic ("T", "s0")); i (I.Const 1); i I.Add;
        i (I.Putstatic ("T", "s0"));
        i (I.Getstatic ("T", "r0")); i I.Monitorexit;
        i (I.Load 0); i (I.Const 1); i I.Add; i (I.Store 0);
        i (I.Goto "loop");
        l "end"; i I.Ret;
      ]
  in
  let main =
    A.method_ ~nlocals:3 "main"
      [
        i (I.New "Object"); i (I.Putstatic ("T", "r0"));
        i (I.Spawn ("T", "work")); i (I.Store 1);
        i (I.Spawn ("T", "work")); i (I.Store 2);
        i (I.Invoke ("T", "work"));
        i (I.Load 1); i I.Join;
        i (I.Load 2); i I.Join;
        i (I.Getstatic ("T", "s0")); i I.Print; i I.Ret;
      ]
  in
  D.program ~main_class:"T"
    [
      D.cdecl "T"
        ~statics:[ D.field "s0"; D.field ~ty:I.Tref "r0" ]
        [ work; main ];
    ]

let test_interrupt_at_monitor_op () =
  let iters = 150 in
  let p = monitor_pingpong iters in
  List.iter
    (fun seed ->
      let cfg = small_quantum seed in
      let nocfg = { cfg with Vm.Rt.regir = false } in
      let ctx = Fmt.str "seed %d" seed in
      let rr, rt = Dejavu.record ~config:cfg ~seed p in
      let sr, st = Dejavu.record ~config:nocfg ~seed p in
      (* the lock serializes the increments: the sum is exact *)
      Alcotest.(check string)
        (ctx ^ " output")
        (Fmt.str "%d\n" (3 * iters))
        rr.Dejavu.output;
      (* coverage is checked on a live (unobserved) run: the observed
         loop recording uses dispatches canonically, outside regions *)
      let live, _ = run ~config:cfg ~seed p in
      let stats = Vm.stats live in
      Alcotest.(check bool)
        (ctx ^ " preemptions arrived")
        true
        (stats.Vm.Rt.n_preempt_req > 0);
      Alcotest.(check bool)
        (ctx ^ " regions covered monitor ops")
        true
        (stats.Vm.Rt.n_regir_mon > 0);
      Alcotest.(check string)
        (ctx ^ " trace bytes")
        (Dejavu.Trace.to_bytes st) (Dejavu.Trace.to_bytes rt);
      Alcotest.(check int)
        (ctx ^ " state digest")
        sr.Dejavu.state_digest rr.Dejavu.state_digest;
      Alcotest.(check int)
        (ctx ^ " event digest")
        sr.Dejavu.obs_digest rr.Dejavu.obs_digest;
      Alcotest.(check int)
        (ctx ^ " event count")
        sr.Dejavu.obs_count rr.Dejavu.obs_count;
      (* cross-replay under the opposite tier *)
      let rep_s, left_s = Dejavu.replay ~config:nocfg p rt in
      Alcotest.(check (list string)) (ctx ^ " regir->stack consumed") [] left_s;
      Alcotest.(check int)
        (ctx ^ " regir->stack events")
        rr.Dejavu.obs_digest rep_s.Dejavu.obs_digest;
      let rep_r, left_r = Dejavu.replay ~config:cfg p st in
      Alcotest.(check (list string)) (ctx ^ " stack->regir consumed") [] left_r;
      Alcotest.(check int)
        (ctx ^ " stack->regir events")
        sr.Dejavu.obs_digest rep_r.Dejavu.obs_digest)
    [ 1; 2; 5 ]

(* Collecting and digesting observers fold the same hash; the collection
   cap bounds retention only, never the digest or the true count. *)
let test_collect_matches_digest () =
  let e =
    match Workloads.Registry.find "ring" with
    | Some e -> e
    | None -> Alcotest.fail "ring workload missing"
  in
  let _, dig = run_observed ~natives:e.natives ~seed:2 e.program in
  let _, col = run_observed ~max_events:max_int ~natives:e.natives ~seed:2 e.program in
  Alcotest.(check int) "digest" (Vm.Observer.digest dig)
    (Vm.Observer.digest col);
  Alcotest.(check int) "count" (Vm.Observer.count dig) (Vm.Observer.count col);
  Alcotest.(check int) "nothing dropped" 0 (Vm.Observer.dropped col);
  Alcotest.(check int) "kept all events" (Vm.Observer.count col)
    (List.length (Vm.Observer.events col))

let test_collect_cap_semantics () =
  let e =
    match Workloads.Registry.find "ring" with
    | Some e -> e
    | None -> Alcotest.fail "ring workload missing"
  in
  let _, dig = run_observed ~natives:e.natives ~seed:2 e.program in
  let cap = 100 in
  let _, col = run_observed ~max_events:cap ~natives:e.natives ~seed:2 e.program in
  let total = Vm.Observer.count dig in
  Alcotest.(check bool) "workload exceeds cap" true (total > cap);
  Alcotest.(check int) "digest exact past cap" (Vm.Observer.digest dig)
    (Vm.Observer.digest col);
  Alcotest.(check int) "true count past cap" total (Vm.Observer.count col);
  Alcotest.(check int) "dropped = count - kept" (total - cap)
    (Vm.Observer.dropped col);
  Alcotest.(check int) "kept exactly the cap" cap
    (List.length (Vm.Observer.events col))

let () =
  Alcotest.run "dispatch"
    [
      ( "loops",
        [
          quick "fast vs observed live" test_fast_vs_observed_live;
          quick "roundtrip digests (observed)" test_roundtrip_digests_observed;
          quick "fast-recorded trace matches" test_fast_recorded_trace_matches;
        ] );
      ( "fusion",
        [
          quick "fused vs unfused live" test_fused_vs_unfused_live;
          quick "fused vs unfused traces" test_fused_vs_unfused_traces;
        ] );
      ( "regir",
        [
          quick "register vs stack live" test_regir_vs_stack_live;
          quick "register vs stack traces" test_regir_vs_stack_traces;
          quick "poly-IC transition mid-trace" test_poly_ic_transition;
          quick "tiny callee inlined into region" test_tiny_callee_inlined;
          quick "interrupt at a monitor op mid-region"
            test_interrupt_at_monitor_op;
        ] );
      ( "observer",
        [
          quick "collect matches digest" test_collect_matches_digest;
          quick "cap: digest, count, dropped" test_collect_cap_semantics;
        ] );
    ]
