(* The replay farm: work queue, dispatcher (ordering / retry / deadline /
   cancellation), wire protocol, streamed-vs-materialized equivalence over
   the whole registry, shard-count-invariant batch digests, and an
   end-to-end serve/submit conversation over a Unix socket. *)

module T = Dejavu.Trace
module D = Server.Dispatcher
module P = Server.Protocol

let quick name f = Alcotest.test_case name `Quick f

(* --- Jobq --------------------------------------------------------------- *)

let test_jobq_fifo () =
  let q = Server.Jobq.create () in
  List.iter (fun v -> ignore (Server.Jobq.submit q v)) [ 10; 11; 12 ];
  Alcotest.(check int) "depth" 3 (Server.Jobq.depth q);
  Alcotest.(check int) "submitted" 3 (Server.Jobq.submitted q);
  let pop () =
    match Server.Jobq.pop q with
    | Some e -> (e.Server.Jobq.seq, e.Server.Jobq.payload)
    | None -> Alcotest.fail "queue empty"
  in
  Alcotest.(check (pair int int)) "first" (0, 10) (pop ());
  Alcotest.(check (pair int int)) "second" (1, 11) (pop ());
  Alcotest.(check (pair int int)) "third" (2, 12) (pop ());
  Server.Jobq.close q;
  Alcotest.(check bool) "drained" true (Server.Jobq.pop q = None);
  match Server.Jobq.submit q 13 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "submit on closed queue"

let test_jobq_cancel () =
  let q = Server.Jobq.create () in
  let e = Server.Jobq.submit q 1 in
  Server.Jobq.cancel e;
  (* cancelled entries still pop: every submission gets a result slot *)
  match Server.Jobq.pop q with
  | Some e' ->
    Alcotest.(check bool) "flagged" true (Server.Jobq.is_cancelled e')
  | None -> Alcotest.fail "cancelled entry vanished"

(* --- Dispatcher --------------------------------------------------------- *)

(* jobs finishing out of order must still emit results in submission
   order: later submissions sleep less *)
let test_dispatcher_order () =
  let d =
    D.create ~shards:3
      ~run:(fun _ctx ms ->
        Unix.sleepf (float_of_int ms /. 1e3);
        ms * 2)
      ()
  in
  let payloads = [ 50; 30; 20; 10; 1 ] in
  List.iter (fun p -> ignore (D.submit d p)) payloads;
  let rs = D.drain d in
  Alcotest.(check (list int))
    "payloads in submission order" payloads
    (List.map (fun r -> r.D.r_payload) rs);
  Alcotest.(check (list int)) "seqs" [ 0; 1; 2; 3; 4 ]
    (List.map (fun r -> r.D.r_seq) rs);
  List.iter
    (fun r ->
      match r.D.r_outcome with
      | D.Done v -> Alcotest.(check int) "result" (r.D.r_payload * 2) v
      | _ -> Alcotest.fail "job did not complete")
    rs

let test_dispatcher_retry () =
  let m = Mutex.create () in
  let tries = Hashtbl.create 8 in
  let d =
    D.create ~shards:2
      ~run:(fun ctx fail_first ->
        let n =
          Mutex.protect m (fun () ->
              let n = 1 + Option.value ~default:0 (Hashtbl.find_opt tries ctx.D.seq) in
              Hashtbl.replace tries ctx.D.seq n;
              n)
        in
        if n <= fail_first then failwith "flaky" else n)
      ()
  in
  (* succeeds on attempt 3 with budget 3; exhausts budget 1 *)
  ignore (D.submit d ~max_retries:3 ~backoff:0.001 2);
  ignore (D.submit d ~max_retries:1 ~backoff:0.001 5);
  match D.drain d with
  | [ a; b ] ->
    (match a.D.r_outcome with
    | D.Done 3 -> ()
    | _ -> Alcotest.fail "retried job should succeed on 3rd attempt");
    Alcotest.(check int) "attempts counted" 3 a.D.r_attempts;
    (match b.D.r_outcome with
    | D.Failed msg ->
      Alcotest.(check bool) "failure message" true
        (String.length msg > 0)
    | _ -> Alcotest.fail "budget-exhausted job should fail");
    Alcotest.(check int) "budget spent" 2 b.D.r_attempts
  | rs -> Alcotest.fail (Fmt.str "expected 2 results, got %d" (List.length rs))

let test_dispatcher_deadline () =
  let d =
    D.create ~shards:1
      ~run:(fun ctx () ->
        while true do
          ctx.D.should_stop ();
          Unix.sleepf 0.002
        done)
      ()
  in
  ignore (D.submit d ~deadline:(Unix.gettimeofday () +. 0.03) ());
  match D.drain d with
  | [ r ] -> (
    match r.D.r_outcome with
    | D.Timed_out -> ()
    | _ -> Alcotest.fail "expected Timed_out")
  | _ -> Alcotest.fail "expected 1 result"

let test_dispatcher_cancel () =
  let d =
    D.create ~shards:1
      ~run:(fun ctx ms ->
        let until = Unix.gettimeofday () +. (float_of_int ms /. 1e3) in
        while Unix.gettimeofday () < until do
          ctx.D.should_stop ();
          Unix.sleepf 0.002
        done)
      ()
  in
  let a = D.submit d 500 in
  let b = D.submit d 1 in
  (* b is still queued behind a: cancelling it must not run it at all;
     cancelling a stops it mid-run at the next poll *)
  D.cancel b;
  Unix.sleepf 0.02;
  D.cancel a;
  match D.drain d with
  | [ ra; rb ] ->
    (match ra.D.r_outcome with
    | D.Cancelled_ -> ()
    | _ -> Alcotest.fail "running job not cancelled");
    Alcotest.(check int) "a started" 1 ra.D.r_attempts;
    (match rb.D.r_outcome with
    | D.Cancelled_ -> ()
    | _ -> Alcotest.fail "queued job not cancelled");
    Alcotest.(check int) "b never started" 0 rb.D.r_attempts;
    let v = Server.Stats.view (D.stats d) in
    Alcotest.(check int) "stats cancelled" 2 v.Server.Stats.v_cancelled;
    Alcotest.(check int) "stats depth drained" 0 v.Server.Stats.v_depth
  | _ -> Alcotest.fail "expected 2 results"

let test_stats_counters () =
  (* hold every job inside [run] until all four are submitted: depth only
     drops at completion, so the peak is deterministically 4 *)
  let gate = Atomic.make false in
  let d =
    D.create ~shards:2
      ~run:(fun _ n ->
        while not (Atomic.get gate) do
          Unix.sleepf 0.001
        done;
        if n < 0 then failwith "neg" else n)
      ()
  in
  List.iter (fun n -> ignore (D.submit d n)) [ 1; -1; 2; 3 ];
  Atomic.set gate true;
  ignore (D.drain d);
  let v = Server.Stats.view (D.stats d) in
  Alcotest.(check int) "submitted" 4 v.Server.Stats.v_submitted;
  Alcotest.(check int) "ok" 3 v.Server.Stats.v_succeeded;
  Alcotest.(check int) "failed" 1 v.Server.Stats.v_failed;
  Alcotest.(check int) "peak depth" 4 v.Server.Stats.v_peak_depth;
  Alcotest.(check bool) "p99 >= p50" true
    (v.Server.Stats.v_p99 >= v.Server.Stats.v_p50)

(* --- Protocol ----------------------------------------------------------- *)

let sample_submit =
  P.Submit
    {
      q_op = P.Op_replay;
      q_workload = "fig1ab";
      q_seed = 7;
      q_trace = "/tmp/x.trace";
      q_deadline_ms = 1500;
      q_max_retries = 2;
    }

let sample_reply =
  {
    P.p_seq = 3;
    p_op = P.Op_record;
    p_workload = "bank";
    p_outcome = 0;
    p_status = "finished";
    p_digest = "deadbeef";
    p_attempts = 1;
    p_latency_us = 12345;
    p_words = 99;
  }

let test_protocol_roundtrip () =
  (match P.decode_request (P.encode_request sample_submit) with
  | P.Submit { q_workload; q_seed; q_trace; q_deadline_ms; q_max_retries; _ }
    ->
    Alcotest.(check string) "workload" "fig1ab" q_workload;
    Alcotest.(check int) "seed" 7 q_seed;
    Alcotest.(check string) "trace" "/tmp/x.trace" q_trace;
    Alcotest.(check int) "deadline" 1500 q_deadline_ms;
    Alcotest.(check int) "retries" 2 q_max_retries
  | P.Finish -> Alcotest.fail "decoded as Finish");
  (match P.decode_request (P.encode_request P.Finish) with
  | P.Finish -> ()
  | _ -> Alcotest.fail "Finish roundtrip");
  let r = P.decode_reply (P.encode_reply sample_reply) in
  Alcotest.(check bool) "reply roundtrip" true (r = sample_reply)

let test_protocol_malformed () =
  (* truncated payload, corrupt tag, trailing garbage: Format_error, no crash *)
  let enc = P.encode_request sample_submit in
  for cut = 0 to String.length enc - 1 do
    match P.decode_request (String.sub enc 0 cut) with
    | exception T.Format_error _ -> ()
    | exception T.End_of_tape _ -> Alcotest.fail "leaked End_of_tape"
    | _ -> Alcotest.fail (Fmt.str "decoded a %d-byte prefix" cut)
  done;
  (match P.decode_request (enc ^ "zz") with
  | exception T.Format_error _ -> ()
  | _ -> Alcotest.fail "accepted trailing bytes");
  match P.decode_request "\xff\xff\xff" with
  | exception T.Format_error _ -> ()
  | _ -> Alcotest.fail "accepted garbage"

let test_frame_truncation () =
  let path = Filename.temp_file "dvframe" ".bin" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out_bin path in
      (* length says 100, only 3 bytes follow *)
      output_binary_int oc 100;
      output_string oc "abc";
      close_out oc;
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          match P.read_frame ic with
          | exception T.Format_error _ -> ()
          | _ -> Alcotest.fail "accepted truncated frame"))

(* --- streamed record/replay vs materialized ----------------------------- *)

(* for every registry workload: recording through the streaming writer must
   produce a byte-identical file to serializing the materialized trace *)
let test_stream_byte_identity_registry () =
  List.iter
    (fun (e : Workloads.Registry.entry) ->
      let path = Filename.temp_file "dvstream" ".trace" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
        (fun () ->
          let _, trace = Dejavu.record ~natives:e.natives e.program in
          let _, _ =
            Dejavu.record_to ~natives:e.natives ~path e.program
          in
          let ic = open_in_bin path in
          let streamed = really_input_string ic (in_channel_length ic) in
          close_in ic;
          Alcotest.(check bool)
            (e.name ^ ": streamed = materialized")
            true
            (String.equal (T.to_bytes trace) streamed)))
    (Lazy.force Workloads.Registry.all)

(* streaming replay must reach the same final state as materialized replay *)
let test_stream_replay_equivalence () =
  List.iter
    (fun name ->
      let e = Option.get (Workloads.Registry.find name) in
      let path = Filename.temp_file "dvrep" ".trace" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
        (fun () ->
          let _, _ = Dejavu.record_to ~natives:e.natives ~path e.program in
          let mat, mleft =
            Dejavu.replay ~natives:e.natives e.program (T.load path)
          in
          let str, sleft =
            Dejavu.replay_from ~natives:e.natives ~path e.program
          in
          Alcotest.(check bool) (name ^ ": both complete") true
            (mleft = [] && sleft = []);
          Alcotest.(check string)
            (name ^ ": same output")
            mat.Dejavu.output str.Dejavu.output;
          Alcotest.(check bool)
            (name ^ ": same state digest")
            true
            (mat.Dejavu.state_digest = str.Dejavu.state_digest)))
    [ "fig1ab"; "producer-consumer"; "native"; "webserver" ]

(* truncated trace file through the full streaming replay path *)
let test_stream_replay_truncated () =
  let e = Option.get (Workloads.Registry.find "fig1ab") in
  let path = Filename.temp_file "dvtrunc" ".trace" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let _, _ = Dejavu.record_to ~natives:e.natives ~path e.program in
      let ic = open_in_bin path in
      let whole = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let oc = open_out_bin path in
      output_string oc (String.sub whole 0 (String.length whole / 2));
      close_out oc;
      match Dejavu.replay_from ~natives:e.natives ~path e.program with
      | exception T.Format_error _ -> ()
      | run, _ -> (
        (* a cut landing on a section boundary can parse; replay must then
           either diverge or finish — never crash *)
        match run.Dejavu.status with
        | Vm.Rt.Fatal _ | Vm.Rt.Finished | Vm.Rt.Halted _ | Vm.Rt.Deadlocked
          ->
          ()
        | Vm.Rt.Running_ -> Alcotest.fail "replay left running"))

(* --- batch -------------------------------------------------------------- *)

let batch_specs out_dir =
  List.map
    (fun name ->
      Server.Job.Record
        {
          workload = name;
          seed = 1;
          out = Filename.concat out_dir (name ^ ".trace");
        })
    [ "fig1ab"; "racy-counter"; "producer-consumer"; "bank"; "primes"; "native" ]
  @ [
      Server.Job.Lint { workload = "fig1ab" };
      Server.Job.Roundtrip { workload = "synced-counter"; seed = 3 };
    ]

let with_tmp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Fmt.str "dvbatch-%d-%.0f" (Unix.getpid ()) (Unix.gettimeofday () *. 1e6))
  in
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Sys.rmdir dir with Sys_error _ -> ())
    (fun () -> f dir)

let test_batch_shard_invariance () =
  with_tmp_dir (fun d1 ->
      with_tmp_dir (fun d4 ->
          let r1 = Server.Batch.run_specs ~shards:1 (batch_specs d1) in
          let r4 = Server.Batch.run_specs ~shards:4 (batch_specs d4) in
          Alcotest.(check bool) "sequential ok" true r1.Server.Batch.ok;
          Alcotest.(check bool) "sharded ok" true r4.Server.Batch.ok;
          Alcotest.(check string)
            "aggregate digest is shard-count invariant"
            r1.Server.Batch.aggregate r4.Server.Batch.aggregate;
          Alcotest.(check int) "row count" (List.length r1.Server.Batch.rows)
            (List.length r4.Server.Batch.rows)))

(* --- serve over a Unix socket ------------------------------------------- *)

let test_serve_end_to_end () =
  with_tmp_dir (fun out_dir ->
      let socket_path = Filename.concat out_dir "dv.sock" in
      let srv =
        Server.Serve.create ~shards:2 ~socket_path ~out_dir ()
      in
      let server_domain =
        Domain.spawn (fun () -> Server.Serve.serve ~max_conns:1 srv)
      in
      let reqs =
        List.map
          (fun (op, w) ->
            P.Submit
              {
                q_op = op;
                q_workload = w;
                q_seed = 1;
                q_trace = "";
                q_deadline_ms = 0;
                q_max_retries = 0;
              })
          [
            (P.Op_record, "fig1ab");
            (P.Op_lint, "bank");
            (P.Op_record, "nonexistent-workload");
          ]
      in
      let replies = Server.Serve.client_submit ~socket_path reqs in
      Domain.join server_domain;
      Server.Serve.shutdown srv;
      Alcotest.(check int) "3 replies" 3 (List.length replies);
      (match replies with
      | [ a; b; c ] ->
        Alcotest.(check string) "in order" "fig1ab" a.P.p_workload;
        Alcotest.(check int) "record done" 0 a.P.p_outcome;
        Alcotest.(check bool) "trace digest" true (String.length a.P.p_digest > 0);
        Alcotest.(check int) "lint done" 0 b.P.p_outcome;
        Alcotest.(check string) "lint status" "ok" b.P.p_status;
        Alcotest.(check int) "unknown workload fails" 1 c.P.p_outcome
      | _ -> Alcotest.fail "reply shape");
      Alcotest.(check bool) "trace file written" true
        (Sys.file_exists (Filename.concat out_dir "fig1ab-0.trace")))

(* A conversation that dies on a malformed frame must not leave its results
   in the dispatcher's reorder buffer: the next connection's reply loop
   would otherwise pull the orphaned results as its own and every later
   conversation would be desynchronized. *)
let test_serve_poisoned_conn_isolated () =
  with_tmp_dir (fun out_dir ->
      let socket_path = Filename.concat out_dir "dv.sock" in
      let srv = Server.Serve.create ~shards:2 ~socket_path ~out_dir () in
      let server_domain =
        Domain.spawn (fun () -> Server.Serve.serve ~max_conns:2 srv)
      in
      let submit op w =
        P.Submit
          {
            q_op = op;
            q_workload = w;
            q_seed = 1;
            q_trace = "";
            q_deadline_ms = 0;
            q_max_retries = 0;
          }
      in
      (* connection 1: two real submissions, then a frame with an unknown
         request tag — the server errors out before streaming any reply *)
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX socket_path);
      let oc = Unix.out_channel_of_descr fd in
      P.write_request oc (submit P.Op_lint "fig1ab");
      P.write_request oc (submit P.Op_lint "primes");
      let b = Buffer.create 4 in
      T.put_varint b 7;
      output_binary_int oc (Buffer.length b);
      Buffer.output_buffer oc b;
      flush oc;
      Unix.close fd;
      (* connection 2 must see exactly its own reply, not an orphan of
         connection 1 *)
      let replies =
        Server.Serve.client_submit ~socket_path [ submit P.Op_lint "bank" ]
      in
      Domain.join server_domain;
      Server.Serve.shutdown srv;
      Alcotest.(check int) "one reply" 1 (List.length replies);
      match replies with
      | [ r ] ->
        Alcotest.(check string) "own workload" "bank" r.P.p_workload;
        Alcotest.(check int) "own job done" 0 r.P.p_outcome
      | _ -> Alcotest.fail "reply shape")

let () =
  Alcotest.run "server"
    [
      ("jobq", [ quick "fifo" test_jobq_fifo; quick "cancel" test_jobq_cancel ]);
      ( "dispatcher",
        [
          quick "in-order results" test_dispatcher_order;
          quick "retry with backoff" test_dispatcher_retry;
          quick "deadline" test_dispatcher_deadline;
          quick "cancellation" test_dispatcher_cancel;
          quick "stats counters" test_stats_counters;
        ] );
      ( "protocol",
        [
          quick "roundtrip" test_protocol_roundtrip;
          quick "malformed payloads" test_protocol_malformed;
          quick "truncated frame" test_frame_truncation;
        ] );
      ( "streaming",
        [
          quick "byte identity across registry" test_stream_byte_identity_registry;
          quick "replay equivalence" test_stream_replay_equivalence;
          quick "truncated trace" test_stream_replay_truncated;
        ] );
      ("batch", [ quick "shard-count invariance" test_batch_shard_invariance ]);
      ( "serve",
        [
          quick "end to end" test_serve_end_to_end;
          quick "poisoned conn isolated" test_serve_poisoned_conn_isolated;
        ] );
    ]
