(* Property-based tests (QCheck): codec roundtrips, interpreter correctness
   against an OCaml reference evaluator, execution determinism, replay
   accuracy on randomly generated multithreaded programs, GC transparency,
   and a fuzzer asserting the VM never crashes at the OCaml level — random
   programs are either rejected (check/link/verify) or run to a status. *)

open Tutil

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* --- codec ---------------------------------------------------------------- *)

let prop_varint_roundtrip =
  qtest ~count:1000 "varint roundtrip" QCheck.int (fun v ->
      let buf = Buffer.create 16 in
      Dejavu.Trace.put_varint buf v;
      let got, pos = Dejavu.Trace.get_varint (Buffer.contents buf) 0 in
      got = v && pos = Buffer.length buf)

(* Edge values first, then uniform 63-bit: QCheck.int alone rarely visits
   the extremes where the zigzag/shift logic can go wrong. *)
let extreme_int_gen =
  QCheck.Gen.(
    frequency
      [
        (1, oneofl [ min_int; max_int; min_int + 1; max_int - 1; 0; -1; 1 ]);
        (8, map (fun (a, b) -> a lxor (b lsl 31)) (pair int int));
      ])

let prop_varint_roundtrip_extremes =
  qtest ~count:2000 "varint roundtrip at 63-bit extremes"
    (QCheck.make ~print:string_of_int extreme_int_gen) (fun v ->
      let buf = Buffer.create 16 in
      Dejavu.Trace.put_varint buf v;
      let got, pos = Dejavu.Trace.get_varint (Buffer.contents buf) 0 in
      got = v && pos = Buffer.length buf)

(* Malformed varint streams must always surface as Format_error — never an
   out-of-range read, a silent wrong value, or a non-Trace exception. *)
let decodes_or_format_error s =
  match Dejavu.Trace.get_varint s 0 with
  | _, pos -> pos <= String.length s
  | exception Dejavu.Trace.Format_error _ -> true

let prop_varint_truncated =
  qtest ~count:500 "truncated varints yield Format_error"
    (QCheck.make ~print:string_of_int extreme_int_gen) (fun v ->
      let buf = Buffer.create 16 in
      Dejavu.Trace.put_varint buf v;
      let s = Buffer.contents buf in
      (* every proper prefix that still ends mid-value must be rejected *)
      List.for_all
        (fun k ->
          match Dejavu.Trace.get_varint (String.sub s 0 k) 0 with
          | exception Dejavu.Trace.Format_error _ -> true
          | _ -> false)
        (List.init (String.length s - 1) (fun k -> k)))

let prop_varint_oversized =
  qtest ~count:200 "oversized varints yield Format_error"
    QCheck.(int_range 9 20)
    (fun n ->
      (* n continuation bytes (>= 9 shifts past bit 56) then a terminator *)
      let s = String.make n '\xff' ^ "\x01" in
      match Dejavu.Trace.get_varint s 0 with
      | exception Dejavu.Trace.Format_error _ -> true
      | _ -> false)

let prop_varint_noncanonical =
  qtest ~count:500 "non-canonical trailing 0x00 yields Format_error"
    QCheck.(int_range 1 8)
    (fun n ->
      (* n continuation bytes then a zero final byte: decodes to a value
         the encoder would have written shorter — must be rejected *)
      let s = String.make n '\x81' ^ "\x00" in
      match Dejavu.Trace.get_varint s 0 with
      | exception Dejavu.Trace.Format_error _ -> true
      | _ -> false)

let garbage_gen =
  QCheck.string_gen_of_size (QCheck.Gen.int_range 0 24) QCheck.Gen.char

let prop_varint_garbage_total =
  qtest ~count:2000 "arbitrary bytes: decode or Format_error, never a crash"
    garbage_gen decodes_or_format_error

let arr_gen = QCheck.(array_of_size (Gen.int_bound 200) int)

let prop_trace_roundtrip =
  qtest ~count:200 "trace bytes roundtrip"
    QCheck.(quad arr_gen arr_gen arr_gen arr_gen)
    (fun (a, b, c, d) ->
      let t =
        {
          Dejavu.Trace.program_digest = "prop";
          analysis_hash = "prop-audit";
          switches = a;
          clocks = b;
          inputs = c;
          natives = d;
          picks = [||];
        }
      in
      let t' = Dejavu.Trace.of_bytes (Dejavu.Trace.to_bytes t) in
      t'.Dejavu.Trace.switches = a
      && t'.Dejavu.Trace.clocks = b
      && t'.Dejavu.Trace.inputs = c
      && t'.Dejavu.Trace.natives = d)

(* --- interpreter vs reference evaluator ----------------------------------- *)

type aop = OAdd of int | OSub of int | OMul of int | ODiv of int | ORem of int
         | OAnd of int | OOr of int | OXor of int | ONeg

let aop_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun n -> OAdd n) (int_range (-1000) 1000);
        map (fun n -> OSub n) (int_range (-1000) 1000);
        map (fun n -> OMul n) (int_range (-30) 30);
        map (fun n -> ODiv n) (oneof [ int_range 1 50; int_range (-50) (-1) ]);
        map (fun n -> ORem n) (oneof [ int_range 1 50; int_range (-50) (-1) ]);
        map (fun n -> OAnd n) (int_range 0 4095);
        map (fun n -> OOr n) (int_range 0 4095);
        map (fun n -> OXor n) (int_range 0 4095);
        return ONeg;
      ])

let eval_ref init ops =
  List.fold_left
    (fun acc op ->
      match op with
      | OAdd n -> acc + n
      | OSub n -> acc - n
      | OMul n -> acc * n
      | ODiv n -> acc / n
      | ORem n -> acc mod n
      | OAnd n -> acc land n
      | OOr n -> acc lor n
      | OXor n -> acc lxor n
      | ONeg -> -acc)
    init ops

let instr_of_aop op =
  match op with
  | OAdd n -> [ i (I.Const n); i I.Add ]
  | OSub n -> [ i (I.Const n); i I.Sub ]
  | OMul n -> [ i (I.Const n); i I.Mul ]
  | ODiv n -> [ i (I.Const n); i I.Div ]
  | ORem n -> [ i (I.Const n); i I.Rem ]
  | OAnd n -> [ i (I.Const n); i I.Band ]
  | OOr n -> [ i (I.Const n); i I.Bor ]
  | OXor n -> [ i (I.Const n); i I.Bxor ]
  | ONeg -> [ i I.Neg ]

let aops_arb =
  QCheck.make
    QCheck.Gen.(pair (int_range (-10000) 10000) (list_size (int_bound 40) aop_gen))

let prop_arith_matches_reference =
  qtest ~count:300 "interpreter matches reference arithmetic" aops_arb
    (fun (init, ops) ->
      let body =
        [ i (I.Const init) ]
        @ List.concat_map instr_of_aop ops
        @ [ i I.Print; i I.Ret ]
      in
      let out, st = run_output (main_prog body) in
      st = Vm.Rt.Finished && out = printed [ eval_ref init ops ])

(* --- determinism ----------------------------------------------------------- *)

let prop_execution_deterministic =
  qtest ~count:25 "same seed, same execution"
    QCheck.(int_range 1 100000)
    (fun seed ->
      let p = Workloads.Counters.racy ~threads:3 ~increments:80 () in
      let vm1, _ = run ~seed p in
      let vm2, _ = run ~seed p in
      Vm.digest vm1 = Vm.digest vm2 && Vm.output vm1 = Vm.output vm2)

(* --- random multithreaded programs replay accurately ------------------------ *)

(* A generated thread body: a loop of [iters] rounds, each doing a random
   mix of shared-counter updates (optionally locked), spins and sleeps. *)
type tact =
  | Bump of bool (* locked? *)
  | Spin of int
  | Nap of int
  | Input
  | Pulse (* timed wait on the shared lock + notify: the wait/notify paths *)

let tact_gen =
  QCheck.Gen.(
    frequency
      [
        (4, map (fun b -> Bump b) bool);
        (3, map (fun n -> Spin n) (int_range 1 40));
        (1, map (fun n -> Nap n) (int_range 1 3));
        (1, return Input);
        (1, return Pulse);
      ])

let racy_arb =
  QCheck.make
    ~print:(fun (nt, iters, bodies) ->
      Fmt.str "threads=%d iters=%d bodies=%d" nt iters (List.length bodies))
    QCheck.Gen.(
      triple (int_range 1 4) (int_range 1 12)
        (list_size (return 4) (list_size (int_range 1 6) tact_gen)))

let program_of_tacts nt iters bodies =
  let c = "Gen" in
  let act_instrs = function
    | Bump false ->
      [
        i (I.Getstatic (c, "counter"));
        i (I.Const 1);
        i I.Add;
        i (I.Putstatic (c, "counter"));
      ]
    | Bump true ->
      [
        i (I.Getstatic (c, "lock"));
        i I.Monitorenter;
        i (I.Getstatic (c, "counter"));
        i (I.Const 1);
        i I.Add;
        i (I.Putstatic (c, "counter"));
        i (I.Getstatic (c, "lock"));
        i I.Monitorexit;
      ]
    | Spin n -> [ i (I.Const n); i (I.Invoke (c, "spin")) ]
    | Nap n -> [ i (I.Const n); i I.Sleep ]
    | Input ->
      [
        i I.Readinput;
        i (I.Getstatic (c, "seen"));
        i I.Add;
        i (I.Putstatic (c, "seen"));
      ]
    | Pulse ->
      (* notify anyone waiting, then wait briefly ourselves (timed, so the
         generated program can never hang on a lost wake-up) *)
      [
        i (I.Getstatic (c, "lock"));
        i I.Monitorenter;
        i (I.Getstatic (c, "lock"));
        i I.Notifyall;
        i (I.Getstatic (c, "lock"));
        i (I.Const 2);
        i I.Timedwait;
        i I.Pop;
        i (I.Getstatic (c, "lock"));
        i I.Monitorexit;
      ]
  in
  let worker k body =
    A.method_ ~nlocals:1
      (Fmt.str "w%d" k)
      ([ i (I.Const iters); i (I.Store 0); l "loop"; i (I.Load 0); i (I.Ifz (I.Le, "end")) ]
      @ List.concat_map act_instrs body
      @ [
          i (I.Load 0);
          i (I.Const 1);
          i I.Sub;
          i (I.Store 0);
          i (I.Goto "loop");
          l "end";
          i I.Ret;
        ])
  in
  let workers = List.mapi worker bodies in
  let used = List.filteri (fun k _ -> k < nt) workers in
  let main =
    A.method_ ~nlocals:(nt + 1) "main"
      ([ i (I.New "Object"); i (I.Putstatic (c, "lock")) ]
      @ List.concat
          (List.mapi
             (fun k _ ->
               [ i (I.Spawn (c, Fmt.str "w%d" k)); i (I.Store k) ])
             used)
      @ List.concat (List.init (List.length used) (fun k -> [ i (I.Load k); i I.Join ]))
      @ [
          i (I.Getstatic (c, "counter"));
          i I.Print;
          i (I.Getstatic (c, "seen"));
          i I.Print;
          i I.Ret;
        ])
  in
  D.program
    [
      D.cdecl c
        ~statics:
          [
            D.field "counter";
            D.field "seen";
            D.field ~ty:(I.Tobj "Object") "lock";
          ]
        (Workloads.Util.spin_method :: workers @ [ main ]);
    ]

let prop_random_programs_roundtrip =
  qtest ~count:40 "random multithreaded programs replay accurately" racy_arb
    (fun (nt, iters, bodies) ->
      let p = program_of_tacts nt iters bodies in
      let rt = Dejavu.verify_roundtrip ~seed:(nt + iters) p in
      Dejavu.ok rt)

let prop_random_programs_switch_map =
  qtest ~count:20 "random programs replay under switch-map too" racy_arb
    (fun (nt, iters, bodies) ->
      let p = program_of_tacts nt iters bodies in
      Baselines.Runner.ok (Baselines.Runner.roundtrip_switch_map ~seed:7 p))

(* --- GC transparency --------------------------------------------------------- *)

let prop_gc_transparent =
  qtest ~count:25 "small heap (many GCs) = big heap result"
    QCheck.(pair (int_range 5 40) (int_range 3 30))
    (fun (nodes, rounds) ->
      let p = Workloads.Gc_churn.program ~threads:2 ~rounds ~nodes () in
      let vm_small, st_small =
        run ~config:{ Vm.Rt.default_config with heap_words = 3500 } ~seed:2 p
      in
      let vm_big, st_big = run ~seed:2 p in
      st_small = st_big && Vm.output vm_small = Vm.output vm_big)

(* --- fuzz: the VM never crashes ------------------------------------------------ *)

let fuzz_instr_gen =
  QCheck.Gen.(
    frequency
      [
        (6, map (fun n -> I.Const n) (int_range (-100) 100));
        (3, map (fun n -> I.Load (abs n mod 5)) small_int);
        (3, map (fun n -> I.Store (abs n mod 5)) small_int);
        (1, return I.Dup);
        (1, return I.Pop);
        (1, return I.Swap);
        (2, return I.Add);
        (1, return I.Sub);
        (1, return I.Mul);
        (1, return I.Div);
        (1, return I.Rem);
        (1, return I.Neg);
        (1, return I.Band);
        (1, return I.Shl);
        (1, map (fun (c, t) ->
                 let cmp = match c mod 6 with
                   | 0 -> I.Eq | 1 -> I.Ne | 2 -> I.Lt | 3 -> I.Le | 4 -> I.Gt | _ -> I.Ge
                 in
                 I.If (cmp, abs t mod 40))
             (pair small_int small_int));
        (1, map (fun t -> I.Ifz (I.Eq, abs t mod 40)) small_int);
        (1, map (fun t -> I.Goto (abs t mod 40)) small_int);
        (1, return (I.New "T"));
        (1, return (I.New "Object"));
        (1, return (I.Getstatic ("T", "s0")));
        (1, return (I.Putstatic ("T", "s0")));
        (1, return (I.Getstatic ("T", "r0")));
        (1, return (I.Putstatic ("T", "r0")));
        (1, return (I.Newarray I.Tint));
        (1, return I.Aload);
        (1, return I.Astore);
        (1, return I.Arraylength);
        (1, return (I.Sconst "f"));
        (1, return I.Prints);
        (1, return I.Print);
        (1, return I.Monitorenter);
        (1, return I.Monitorexit);
        (1, return (I.Invoke ("T", "aux")));
        (1, return (I.Spawn ("T", "aux")));
        (1, return I.Join);
        (1, return I.Sleep);
        (1, return I.Currenttime);
        (1, return I.Readinput);
        (1, return (I.Checkcast "String"));
        (1, return (I.Instanceof "Object"));
        (1, return I.Throw);
        (1, return I.Ret);
        (1, return I.Halt);
        (1, return I.Nop);
      ])

let fuzz_arb =
  QCheck.make
    ~print:(fun instrs ->
      String.concat "; " (List.map I.to_string instrs))
    QCheck.Gen.(list_size (int_range 1 40) fuzz_instr_gen)

let prop_vm_never_crashes =
  qtest ~count:800 "random programs: rejected or executed, never a crash"
    fuzz_arb
    (fun instrs ->
      let code = Array.of_list (instrs @ [ I.Ret ]) in
      let aux = D.mdecl ~nlocals:0 "aux" [ I.Ret ] in
      let main = D.mdecl ~nlocals:5 "main" (Array.to_list code) in
      let p =
        D.program ~main_class:"T"
          [
            D.cdecl "T"
              ~statics:[ D.field "s0"; D.field ~ty:I.Tref "r0" ]
              [ aux; main ];
          ]
      in
      match run ~limit:100_000 p with
      | _vm, _status -> true
      | exception Vm.Link.Error _ -> true (* static rejection *)
      | exception Vm.Verify.Error _ -> true (* verifier rejection *)
      | exception Vm.Compile.Error _ -> true)

let prop_fuzzed_gc_agrees =
  qtest ~count:200 "accepted random programs: heap size is transparent"
    fuzz_arb
    (fun instrs ->
      let code = instrs @ [ I.Ret ] in
      let aux = D.mdecl ~nlocals:0 "aux" [ I.Ret ] in
      let main = D.mdecl ~nlocals:5 "main" code in
      let p =
        D.program ~main_class:"T"
          [
            D.cdecl "T"
              ~statics:[ D.field "s0"; D.field ~ty:I.Tref "r0" ]
              [ aux; main ];
          ]
      in
      match run ~limit:100_000 p with
      | exception _ -> true (* rejected: nothing to compare *)
      | vm_big, st_big -> (
        match
          run ~limit:100_000
            ~config:{ Vm.Rt.default_config with heap_words = 2500 } p
        with
        | vm_small, st_small -> (
          match (st_big, st_small) with
          | Vm.Rt.Fatal _, _ | _, Vm.Rt.Fatal _ -> true (* OOM timing differs *)
          | _ -> st_big = st_small && Vm.output vm_big = Vm.output vm_small)
        | exception _ -> false))

let prop_fuzzed_replay =
  qtest ~count:150 "accepted random programs replay accurately" fuzz_arb
    (fun instrs ->
      let code = instrs @ [ I.Ret ] in
      let aux = D.mdecl ~nlocals:0 "aux" [ I.Ret ] in
      let main = D.mdecl ~nlocals:5 "main" code in
      let p =
        D.program ~main_class:"T"
          [
            D.cdecl "T"
              ~statics:[ D.field "s0"; D.field ~ty:I.Tref "r0" ]
              [ aux; main ];
          ]
      in
      match Dejavu.verify_roundtrip ~limit:100_000 ~seed:5 p with
      | rt -> Dejavu.ok rt
      | exception Vm.Link.Error _ -> true
      | exception Vm.Verify.Error _ -> true
      | exception Vm.Compile.Error _ -> true)

let prop_snapshot_transparent =
  qtest ~count:40 "snapshot/restore preserves the timeline" racy_arb
    (fun (nt, iters, bodies) ->
      let p = program_of_tacts nt iters bodies in
      let vm = Vm.create p in
      Vm.boot vm;
      let k = ref 0 in
      while Vm.status vm = Vm.Rt.Running_ && !k < 400 do
        Vm.step vm;
        incr k
      done;
      if Vm.status vm <> Vm.Rt.Running_ then true
      else begin
        let ck = Vm.Snapshot.save vm in
        ignore (Vm.run vm);
        let a = (Vm.output vm, Vm.digest vm) in
        Vm.Snapshot.restore vm ck;
        ignore (Vm.run vm);
        (Vm.output vm, Vm.digest vm) = a
      end)

let prop_random_programs_icount =
  qtest ~count:15 "random programs replay under instruction counting" racy_arb
    (fun (nt, iters, bodies) ->
      let p = program_of_tacts nt iters bodies in
      Baselines.Runner.ok (Baselines.Runner.roundtrip_icount ~seed:11 p))

(* --- superinstruction fusion is invisible --------------------------------- *)

let unfused_config = { Vm.Rt.default_config with Vm.Rt.fuse = false }

(* Random multithreaded programs: recording under the fused stream and
   under the canonical stream must produce the same output, final state,
   event sequence, and byte-identical traces. *)
let prop_fusion_transparent_mt =
  qtest ~count:30 "fusion invisible on random multithreaded programs" racy_arb
    (fun (nt, iters, bodies) ->
      let p = program_of_tacts nt iters bodies in
      let seed = (7 * nt) + iters in
      let fr, ft = Dejavu.record ~seed p in
      let ur, ut = Dejavu.record ~config:unfused_config ~seed p in
      fr.Dejavu.output = ur.Dejavu.output
      && fr.Dejavu.state_digest = ur.Dejavu.state_digest
      && fr.Dejavu.obs_digest = ur.Dejavu.obs_digest
      && fr.Dejavu.obs_count = ur.Dejavu.obs_count
      && Dejavu.Trace.to_bytes ft = Dejavu.Trace.to_bytes ut)

(* Fuzzed programs reach the paths the structured generator cannot: faults
   inside fused regions (division by zero mid-superinstruction), mid-region
   branch targets, and instruction-limit cutoffs. The fused run must agree
   with the canonical run on status, output, and state digest — the digest
   covers dead stack slots, so even transient pushes must match. *)
let prop_fuzzed_fusion_agrees =
  qtest ~count:250 "accepted random programs: fusion transparent" fuzz_arb
    (fun instrs ->
      let code = instrs @ [ I.Ret ] in
      let aux = D.mdecl ~nlocals:0 "aux" [ I.Ret ] in
      let main = D.mdecl ~nlocals:5 "main" code in
      let p =
        D.program ~main_class:"T"
          [
            D.cdecl "T"
              ~statics:[ D.field "s0"; D.field ~ty:I.Tref "r0" ]
              [ aux; main ];
          ]
      in
      match run ~limit:100_000 p with
      | exception _ -> true (* rejected before dispatch: nothing to compare *)
      | vm_f, st_f ->
        let vm_u, st_u = run ~limit:100_000 ~config:unfused_config p in
        st_f = st_u
        && Vm.output vm_f = Vm.output vm_u
        && Vm.digest vm_f = Vm.digest vm_u)

(* --- the register-IR tier is invisible ------------------------------------- *)

let noregir_config = { Vm.Rt.default_config with Vm.Rt.regir = false }

(* Random multithreaded programs: recording on the register tier and on
   the stack tier must produce the same output, final state, event
   sequence, and byte-identical traces — preemptions land on the same
   instructions because RTick batches pay the same logical-clock charges
   at the same points. *)
let prop_regir_transparent_mt =
  qtest ~count:30 "register tier invisible on random multithreaded programs"
    racy_arb (fun (nt, iters, bodies) ->
      let p = program_of_tacts nt iters bodies in
      let seed = (7 * nt) + iters in
      let rr, rt = Dejavu.record ~seed p in
      let sr, st = Dejavu.record ~config:noregir_config ~seed p in
      rr.Dejavu.output = sr.Dejavu.output
      && rr.Dejavu.state_digest = sr.Dejavu.state_digest
      && rr.Dejavu.obs_digest = sr.Dejavu.obs_digest
      && rr.Dejavu.obs_count = sr.Dejavu.obs_count
      && Dejavu.Trace.to_bytes rt = Dejavu.Trace.to_bytes st)

(* Fuzzed programs reach what the structured generator cannot: faults
   mid-region (the stored pc/sp must match the canonical fault point),
   branches into region interiors, and instruction-limit cutoffs between
   segments. The digest covers dead stack slots, so the write-elision in
   the lowering must never skip a slot the canonical tier would have
   written last. *)
let prop_fuzzed_regir_agrees =
  qtest ~count:250 "accepted random programs: register tier transparent"
    fuzz_arb (fun instrs ->
      let code = instrs @ [ I.Ret ] in
      let aux = D.mdecl ~nlocals:0 "aux" [ I.Ret ] in
      let main = D.mdecl ~nlocals:5 "main" code in
      let p =
        D.program ~main_class:"T"
          [
            D.cdecl "T"
              ~statics:[ D.field "s0"; D.field ~ty:I.Tref "r0" ]
              [ aux; main ];
          ]
      in
      match run ~limit:100_000 p with
      | exception _ -> true (* rejected before dispatch: nothing to compare *)
      | vm_r, st_r ->
        let vm_s, st_s = run ~limit:100_000 ~config:noregir_config p in
        st_r = st_s
        && Vm.output vm_r = Vm.output vm_s
        && Vm.digest vm_r = Vm.digest vm_s)

(* --- lazy clock horizon ----------------------------------------------- *)

(* The lazily-materialized clock (precomputed preemption horizon with
   deferred PRNG draws) must be indistinguishable from the eager
   per-tick reference at every observation point: same fire pattern,
   same [now]/[ticks]/[timer_fires]/[next_timer] whenever something
   reads the clock (Currenttime, Sleep wakeups), and the same stream
   position for non-clock draws. Shapes cover jitter=0 (the fused
   no-jitter stub path), spike-free, out-of-stub-range jitter, and a
   tiny quantum (the horizon ends every few ticks). *)
let clock_shapes =
  [|
    { Vm.Env.default_config with Vm.Env.jitter = 0; spike_per_mille = 0 };
    { Vm.Env.default_config with Vm.Env.jitter = 0 };
    { Vm.Env.default_config with Vm.Env.spike_per_mille = 0 };
    Vm.Env.default_config;
    { Vm.Env.default_config with Vm.Env.jitter = 4096 };
    { Vm.Env.default_config with Vm.Env.quantum = 17; quantum_jitter = 5 };
  |]

type clock_op =
  | CTick of int  (* charge n instructions (batch on even n, per-tick odd) *)
  | CRead  (* Currenttime: read the clock *)
  | CCharge of int  (* compile-cost charge *)
  | CIdle of int  (* Sleep wakeup: idle to now + n *)
  | CRand of int  (* native draw from the same stream *)

let clock_op_gen =
  QCheck.Gen.(
    frequency
      [
        (6, map (fun n -> CTick (1 + (abs n mod 400))) int);
        (2, return CRead);
        (1, map (fun n -> CCharge (abs n mod 500)) int);
        (1, map (fun n -> CIdle (abs n mod 2000)) int);
        (2, map (fun n -> CRand (1 + (abs n mod 1000))) int);
      ])

let clock_arb =
  QCheck.make
    ~print:(fun (shape, seed, ops) ->
      Fmt.str "shape %d seed %d: %s" shape seed
        (String.concat "; "
           (List.map
              (function
                | CTick n -> Fmt.str "tick %d" n
                | CRead -> "read"
                | CCharge n -> Fmt.str "charge %d" n
                | CIdle n -> Fmt.str "idle +%d" n
                | CRand b -> Fmt.str "rand %d" b)
              ops)))
    QCheck.Gen.(
      triple
        (int_range 0 (Array.length clock_shapes - 1))
        (int_range 1 10_000)
        (list_size (int_range 1 60) clock_op_gen))

let prop_lazy_clock_matches_eager =
  qtest ~count:300 "lazy horizon clock = eager clock at observation points"
    clock_arb (fun (shape, seed, ops) ->
      let cfg = { clock_shapes.(shape) with Vm.Env.seed } in
      let l = Vm.Env.create cfg and e = Vm.Env.create cfg in
      let ok = ref true in
      let obs () =
        ok :=
          !ok
          && Vm.Env.read_clock l = Vm.Env.read_clock e
          && l.Vm.Env.ticks = e.Vm.Env.ticks
          && l.Vm.Env.timer_fires = e.Vm.Env.timer_fires
          && l.Vm.Env.next_timer = e.Vm.Env.next_timer
      in
      List.iter
        (fun op ->
          if !ok then
            match op with
            | CTick n ->
              (* lazy side: alternate the batch entry (regions) and the
                 per-tick entry (canonical dispatch) *)
              let lazy_fires =
                if n land 1 = 0 then Vm.Env.tick_batch l n
                else begin
                  let f = ref 0 in
                  for _ = 1 to n do
                    if Vm.Env.tick l then incr f
                  done;
                  !f
                end
              in
              let eager_fires = ref 0 in
              for _ = 1 to n do
                if Vm.Env.tick_eager e then incr eager_fires
              done;
              ok := !ok && lazy_fires = !eager_fires
            | CRead -> obs ()
            | CCharge n ->
              Vm.Env.charge l n;
              Vm.Env.charge e n;
              obs ()
            | CIdle d ->
              let target = Vm.Env.read_clock e + d in
              ok :=
                !ok && Vm.Env.idle_until l target = Vm.Env.idle_until e target;
              obs ()
            | CRand b ->
              ok := !ok && Vm.Env.random l b = Vm.Env.random e b;
              obs ())
        ops;
      obs ();
      !ok)

(* --- monomorphic inline caches are invisible -------------------------------- *)

(* The catalogue workloads that compile virtual call/spawn sites. *)
let ic_workloads = [ "synced-counter"; "producer-consumer"; "exceptions" ]

let find_entry name =
  match Workloads.Registry.find name with
  | Some e -> e
  | None -> Alcotest.failf "workload %s missing" name

let seeded_config seed =
  {
    Vm.Rt.default_config with
    Vm.Rt.env_cfg = { Vm.Rt.default_config.Vm.Rt.env_cfg with Vm.Env.seed };
  }

let force_compile vm =
  Array.iter
    (fun (m : Vm.Rt.rmethod) -> ignore (Vm.Compile.compile vm m))
    vm.Vm.Rt.methods

(* Copy warm inline-cache contents from [src]'s compiled methods into
   [dst]'s (both link the same program, so uids and pcs line up; [dst]
   must already be force-compiled). Returns the number of warm sites. *)
let copy_warm_ics src dst =
  let copied = ref 0 in
  Array.iteri
    (fun k (m : Vm.Rt.rmethod) ->
      match m.Vm.Rt.rm_compiled with
      | None -> ()
      | Some c ->
        let c' = Vm.Rt.compiled dst.Vm.Rt.methods.(k) in
        Array.iteri
          (fun pc ins ->
            match (ins, c'.Vm.Rt.k_code.(pc)) with
            | ( Vm.Rt.KInvokevirtual (_, _, _, ic),
                Vm.Rt.KInvokevirtual (_, _, _, ic') )
            | ( Vm.Rt.KSpawnvirtual (_, _, _, ic),
                Vm.Rt.KSpawnvirtual (_, _, _, ic') ) ->
              if ic.Vm.Rt.ic_cid >= 0 then begin
                incr copied;
                ic'.Vm.Rt.ic_cid <- ic.Vm.Rt.ic_cid;
                ic'.Vm.Rt.ic_meth <-
                  dst.Vm.Rt.methods.(ic.Vm.Rt.ic_meth.Vm.Rt.uid)
              end
            | _ -> ())
          c.Vm.Rt.k_code)
    src.Vm.Rt.methods;
  !copied

(* Record on a VM whose methods were all compiled up front (the compile
   cost lands before boot instead of mid-run, so two such records share a
   timeline), optionally warming its inline caches from a prior run. *)
let record_precompiled ?warm_from (e : Workloads.Registry.entry) seed =
  let vm = Vm.create ~config:(seeded_config seed) ~natives:e.natives e.program in
  force_compile vm;
  let warmed =
    match warm_from with None -> 0 | Some src -> copy_warm_ics src vm
  in
  let session = Dejavu.Recorder.attach vm in
  let obs = Vm.Observer.attach_digest vm in
  ignore (Vm.run vm);
  (vm, Dejavu.Recorder.finish session, obs, warmed)

(* Cold vs warm inline caches: an IC is pure memoization of the vtable
   walk, so a recording taken with every cache pre-warmed must be
   byte-identical to one taken cold. *)
let test_warm_ic_record_identical () =
  List.iter
    (fun name ->
      let e = find_entry name in
      let live, _ = Vm.execute ~natives:e.natives ~seed:1 e.program in
      let vm_c, tr_c, obs_c, _ = record_precompiled e 1 in
      let vm_w, tr_w, obs_w, warmed = record_precompiled ~warm_from:live e 1 in
      Alcotest.(check bool) (name ^ " some ics warmed") true (warmed > 0);
      Alcotest.(check string)
        (name ^ " trace bytes")
        (Dejavu.Trace.to_bytes tr_c)
        (Dejavu.Trace.to_bytes tr_w);
      Alcotest.(check int)
        (name ^ " event digest")
        (Vm.Observer.digest obs_c) (Vm.Observer.digest obs_w);
      Alcotest.(check string) (name ^ " output") (Vm.output vm_c)
        (Vm.output vm_w);
      Alcotest.(check int) (name ^ " state digest") (Vm.digest vm_c)
        (Vm.digest vm_w))
    ic_workloads

(* Replay is environment-independent, so a warm replay VM — methods
   pre-compiled, caches pre-warmed — must consume a cold-recorded trace
   exactly as a cold replay does. *)
let test_warm_ic_replay_identical () =
  List.iter
    (fun name ->
      let e = find_entry name in
      let _, trace = Dejavu.record ~natives:e.natives ~seed:2 e.program in
      let cold, left = Dejavu.replay ~natives:e.natives e.program trace in
      Alcotest.(check (list string)) (name ^ " cold replay consumed") [] left;
      let live, _ = Vm.execute ~natives:e.natives ~seed:2 e.program in
      let vm = Vm.create ~natives:e.natives e.program in
      force_compile vm;
      let warmed = copy_warm_ics live vm in
      Alcotest.(check bool) (name ^ " some ics warmed") true (warmed > 0);
      let session = Dejavu.Replayer.attach vm trace in
      let obs = Vm.Observer.attach_digest vm in
      ignore (Vm.run vm);
      Alcotest.(check (list string))
        (name ^ " warm replay consumed")
        []
        (Dejavu.Replayer.check_complete session);
      Alcotest.(check int)
        (name ^ " event digest")
        cold.Dejavu.obs_digest (Vm.Observer.digest obs);
      Alcotest.(check int)
        (name ^ " event count")
        cold.Dejavu.obs_count (Vm.Observer.count obs);
      Alcotest.(check string) (name ^ " output") cold.Dejavu.output
        (Vm.output vm);
      Alcotest.(check int)
        (name ^ " state digest")
        cold.Dejavu.state_digest (Vm.digest vm))
    ic_workloads

let prop_fuzzed_emit_roundtrip =
  qtest ~count:200 "accepted random programs survive emit+parse" fuzz_arb
    (fun instrs ->
      let code = instrs @ [ I.Ret ] in
      let aux = D.mdecl ~nlocals:0 "aux" [ I.Ret ] in
      let main = D.mdecl ~nlocals:5 "main" code in
      let p =
        D.program ~main_class:"T"
          [
            D.cdecl "T"
              ~statics:[ D.field "s0"; D.field ~ty:I.Tref "r0" ]
              [ aux; main ];
          ]
      in
      if Bytecode.Check.check p <> [] then true
      else
        match Bytecode.Parser.parse_string (Bytecode.Emit.to_string p) with
        | p' -> D.digest p = D.digest p'
        | exception Bytecode.Parser.Error _ -> false)

let () =
  Alcotest.run "props"
    [
      ( "codec",
        [
          prop_varint_roundtrip; prop_varint_roundtrip_extremes;
          prop_varint_truncated; prop_varint_oversized;
          prop_varint_noncanonical; prop_varint_garbage_total;
          prop_trace_roundtrip;
        ] );
      ("interp", [ prop_arith_matches_reference ]);
      ("determinism", [ prop_execution_deterministic ]);
      ( "replay",
        [
          prop_random_programs_roundtrip; prop_random_programs_switch_map;
          prop_random_programs_icount;
        ] );
      ("snapshot", [ prop_snapshot_transparent ]);
      ( "fusion",
        [
          prop_fusion_transparent_mt; prop_fuzzed_fusion_agrees;
        ] );
      ( "regir",
        [
          prop_regir_transparent_mt; prop_fuzzed_regir_agrees;
        ] );
      ("clock", [ prop_lazy_clock_matches_eager ]);
      ( "inline-caches",
        [
          quick "warm record = cold record" test_warm_ic_record_identical;
          quick "warm replay = cold replay" test_warm_ic_replay_identical;
        ] );
      ("gc", [ prop_gc_transparent ]);
      ( "fuzz",
        [
          prop_vm_never_crashes; prop_fuzzed_gc_agrees; prop_fuzzed_replay;
          prop_fuzzed_emit_roundtrip;
        ] );
    ]
