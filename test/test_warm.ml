(* Warm-VM reuse: the parity contract (a baseline-reset VM is
   indistinguishable from a cold boot — traces and digests byte-identical,
   registry-wide), the pool's LRU accounting, the size-aware placement
   policy, and the two dispatcher fixes that ride along: retry backoff
   re-enqueues instead of sleeping on the shard domain, and an entry whose
   deadline has passed at dequeue completes as Timed_out without ever
   touching a VM. *)

module D = Server.Dispatcher

let quick name f = Alcotest.test_case name `Quick f

let all () = Lazy.force Workloads.Registry.all

let find name =
  match Workloads.Registry.find name with
  | Some e -> e
  | None -> Alcotest.fail ("workload missing: " ^ name)

let seeded seed =
  {
    Vm.Rt.default_config with
    Vm.Rt.env_cfg = { Vm.Rt.default_config.Vm.Rt.env_cfg with Vm.Env.seed };
  }

let noctx = { D.shard = 0; seq = 0; should_stop = (fun () -> ()) }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let with_tmp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Fmt.str "dvwarm-%d-%.0f" (Unix.getpid ()) (Unix.gettimeofday () *. 1e6))
  in
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Sys.rmdir dir with Sys_error _ -> ())
    (fun () -> f dir)

(* --- Vm.reset parity ----------------------------------------------------- *)

(* Boot, snapshot, dirty the VM by running it to completion, then reset
   under a different seed: the reset VM must be indistinguishable from a
   fresh boot under that seed, both at rest (state digest, stats) and
   through a full run (status, output, digest, instruction count). This
   pins every per-job mutation the reset must undo: heap, threads, PRNG
   position, compiled methods, stats, observer hooks. *)
let test_reset_equals_cold () =
  List.iter
    (fun name ->
      let e = find name in
      let vm = Vm.create ~config:(seeded 1) ~natives:e.natives e.program in
      let baseline = Vm.Snapshot.save vm in
      ignore (Vm.run vm);
      Vm.reset ~seed:5 vm baseline;
      let cold = Vm.create ~config:(seeded 5) ~natives:e.natives e.program in
      let ctx = name ^ ": " in
      Alcotest.(check int)
        (ctx ^ "digest at rest")
        (Vm.digest cold) (Vm.digest vm);
      Alcotest.(check int)
        (ctx ^ "stats reset")
        (Vm.stats cold).Vm.Rt.n_instr (Vm.stats vm).Vm.Rt.n_instr;
      ignore (Vm.run vm);
      ignore (Vm.run cold);
      Alcotest.(check string)
        (ctx ^ "status")
        (Vm.string_of_status (Vm.status cold))
        (Vm.string_of_status (Vm.status vm));
      Alcotest.(check string) (ctx ^ "output") (Vm.output cold) (Vm.output vm);
      Alcotest.(check int) (ctx ^ "digest") (Vm.digest cold) (Vm.digest vm);
      Alcotest.(check int)
        (ctx ^ "instructions")
        (Vm.stats cold).Vm.Rt.n_instr (Vm.stats vm).Vm.Rt.n_instr)
    [ "fig1ab"; "producer-consumer"; "native"; "webserver" ]

(* --- register-tier rollback ---------------------------------------------- *)

let compiled_methods (vm : Vm.t) =
  Array.fold_left
    (fun n (m : Vm.Rt.rmethod) ->
      if m.Vm.Rt.rm_compiled <> None then n + 1 else n)
    0 vm.Vm.Rt.methods

let region_count (vm : Vm.t) =
  Array.fold_left
    (fun n (m : Vm.Rt.rmethod) ->
      match m.Vm.Rt.rm_compiled with
      | Some c ->
        Array.fold_left
          (fun n r -> if r <> None then n + 1 else n)
          n c.Vm.Rt.k_regions
      | None -> n)
    0 vm.Vm.Rt.methods

(* Snapshot rollback un-compiles the register tier with the method:
   [k_regions] lives inside [compiled], so restoring [rm_compiled] drops
   the regions and the reset VM re-lowers (re-paying the compile clock
   charge) on the next run — which must reproduce the first run exactly,
   register coverage included. *)
let test_reset_rolls_back_register_tier () =
  let e = find "primes" in
  let vm = Vm.create ~config:(seeded 1) ~natives:e.natives e.program in
  let baseline = Vm.Snapshot.save vm in
  let base_compiled = compiled_methods vm in
  ignore (Vm.run vm);
  let out1 = Vm.output vm in
  let dig1 = Vm.digest vm in
  let n1 = (Vm.stats vm).Vm.Rt.n_instr in
  let ri1 = (Vm.stats vm).Vm.Rt.n_regir_instr in
  Alcotest.(check bool) "run tiered up" true (region_count vm > 0 && ri1 > 0);
  Vm.reset ~seed:1 vm baseline;
  Alcotest.(check int) "rollback un-compiled the methods" base_compiled
    (compiled_methods vm);
  Alcotest.(check int) "no regions survive the rollback" 0 (region_count vm);
  Alcotest.(check int) "regir counter reset" 0
    (Vm.stats vm).Vm.Rt.n_regir_instr;
  let cold = Vm.create ~config:(seeded 1) ~natives:e.natives e.program in
  Alcotest.(check int) "digest at rest = cold boot" (Vm.digest cold)
    (Vm.digest vm);
  ignore (Vm.run vm);
  Alcotest.(check string) "re-run output" out1 (Vm.output vm);
  Alcotest.(check int) "re-run digest" dig1 (Vm.digest vm);
  Alcotest.(check int) "re-run instructions" n1 (Vm.stats vm).Vm.Rt.n_instr;
  Alcotest.(check int) "re-run register coverage" ri1
    (Vm.stats vm).Vm.Rt.n_regir_instr

(* The same contract through the pool: back-to-back acquires of a
   workload reuse one VM across tier-up (second acquire is a baseline
   reset, not a boot) and both runs are identical. *)
let test_warm_reuse_across_tierup () =
  let pool = Server.Warm.create () in
  let e = find "primes" in
  let vm1 = Server.Warm.acquire pool e ~seed:1 in
  ignore (Vm.run vm1);
  let out1 = Vm.output vm1 in
  let dig1 = Vm.digest vm1 in
  let ri1 = (Vm.stats vm1).Vm.Rt.n_regir_instr in
  Alcotest.(check bool) "first run tiered up" true (ri1 > 0);
  let vm2 = Server.Warm.acquire pool e ~seed:1 in
  Alcotest.(check int) "reset regir counter" 0
    (Vm.stats vm2).Vm.Rt.n_regir_instr;
  Alcotest.(check int) "reset dropped the regions" 0 (region_count vm2);
  ignore (Vm.run vm2);
  Alcotest.(check string) "warm output" out1 (Vm.output vm2);
  Alcotest.(check int) "warm digest" dig1 (Vm.digest vm2);
  Alcotest.(check int) "warm register coverage" ri1
    (Vm.stats vm2).Vm.Rt.n_regir_instr;
  let s = Server.Warm.stats pool in
  Alcotest.(check int) "one boot" 1 s.Server.Warm.w_misses;
  Alcotest.(check int) "one reset" 1 s.Server.Warm.w_hits

(* --- Warm pool accounting ------------------------------------------------ *)

let test_pool_counters_and_lru () =
  let pool = Server.Warm.create ~cap:2 () in
  let acquire name = ignore (Server.Warm.acquire pool (find name) ~seed:1) in
  acquire "fig1ab"; (* miss: boot *)
  acquire "fig1ab"; (* hit: reset *)
  acquire "bank"; (* miss *)
  acquire "primes"; (* miss; cap 2 -> evicts fig1ab (LRU) *)
  acquire "fig1ab" (* miss again: it was evicted *);
  let s = Server.Warm.stats pool in
  Alcotest.(check int) "hits" 1 s.Server.Warm.w_hits;
  Alcotest.(check int) "misses" 4 s.Server.Warm.w_misses;
  Alcotest.(check int) "evictions" 2 s.Server.Warm.w_evictions;
  Alcotest.(check int) "resident" 2 s.Server.Warm.w_resident

(* --- warm vs cold identity, registry-wide (the parity contract) ---------- *)

(* For every catalogued workload: a cold record, two back-to-back warm
   records (the second is a baseline reset), and a warm record under a
   different seed after the pool slot ran other seeds — trace bytes and
   digests all equal their cold twins. This is the contract that makes
   warm reuse admissible at all. *)
let test_warm_cold_identity_registry () =
  with_tmp_dir (fun dir ->
      let r = Server.Job.runner ~shards:1 () in
      let record run name seed out =
        match
          run noctx
            (Server.Job.Record
               { workload = name; seed; out = Filename.concat dir out })
        with
        | (o : Server.Job.output) -> o
      in
      List.iter
        (fun (e : Workloads.Registry.entry) ->
          let cold = record (Server.Job.run ?slice:None) e.name 1 "cold.trace" in
          let warm1 = record r.Server.Job.run e.name 1 "warm1.trace" in
          let warm2 = record r.Server.Job.run e.name 1 "warm2.trace" in
          let ctx = e.name ^ ": " in
          Alcotest.(check string)
            (ctx ^ "warm trace digest") cold.Server.Job.o_digest
            warm1.Server.Job.o_digest;
          Alcotest.(check string)
            (ctx ^ "reset trace digest") cold.Server.Job.o_digest
            warm2.Server.Job.o_digest;
          Alcotest.(check string)
            (ctx ^ "status") cold.Server.Job.o_status warm2.Server.Job.o_status;
          Alcotest.(check int)
            (ctx ^ "words") cold.Server.Job.o_words warm2.Server.Job.o_words;
          let bytes = read_file (Filename.concat dir "cold.trace") in
          Alcotest.(check bool)
            (ctx ^ "trace bytes equal")
            true
            (String.equal bytes (read_file (Filename.concat dir "warm1.trace"))
            && String.equal bytes (read_file (Filename.concat dir "warm2.trace")));
          (* a different seed through the now-well-used pool slot *)
          let cold9 = record (Server.Job.run ?slice:None) e.name 9 "cold9.trace" in
          let warm9 = record r.Server.Job.run e.name 9 "warm9.trace" in
          Alcotest.(check string)
            (ctx ^ "seed-9 digest") cold9.Server.Job.o_digest
            warm9.Server.Job.o_digest;
          Alcotest.(check bool)
            (ctx ^ "seed-9 bytes")
            true
            (String.equal
               (read_file (Filename.concat dir "cold9.trace"))
               (read_file (Filename.concat dir "warm9.trace"))))
        (all ());
      let s = r.Server.Job.warm_stats () in
      Alcotest.(check int)
        "every workload booted once"
        (List.length (all ()))
        s.Server.Warm.w_misses;
      Alcotest.(check int)
        "every later record was a reset"
        (2 * List.length (all ()))
        s.Server.Warm.w_hits)

(* A job abandoned mid-run (cancelled at a poll point) leaves its pool VM
   mid-program; the next acquire must still produce a cold-identical
   record. *)
let test_warm_after_cancelled_job () =
  with_tmp_dir (fun dir ->
      let e = find "producer-consumer" in
      let slice = 50 in
      let r = Server.Job.runner ~slice ~shards:1 () in
      let polls = ref 0 in
      let cancel_ctx =
        {
          D.shard = 0;
          seq = 0;
          should_stop =
            (fun () ->
              incr polls;
              if !polls > 2 then raise D.Cancelled);
        }
      in
      let spec out =
        Server.Job.Record
          { workload = e.name; seed = 1; out = Filename.concat dir out }
      in
      (match r.Server.Job.run cancel_ctx (spec "aborted.trace") with
      | exception D.Cancelled -> ()
      | _ -> Alcotest.fail "job was not cancelled");
      Alcotest.(check bool)
        "aborted job left no trace file" false
        (Sys.file_exists (Filename.concat dir "aborted.trace"));
      let warm = r.Server.Job.run noctx (spec "after.trace") in
      let cold = Server.Job.run ~slice noctx (spec "cold.trace") in
      Alcotest.(check string) "digest after abandoned predecessor"
        cold.Server.Job.o_digest warm.Server.Job.o_digest;
      Alcotest.(check bool) "bytes equal" true
        (String.equal
           (read_file (Filename.concat dir "cold.trace"))
           (read_file (Filename.concat dir "after.trace"))))

(* --- placement policy ---------------------------------------------------- *)

let place_testable =
  Alcotest.testable
    (fun ppf -> function
      | D.Shared -> Fmt.pf ppf "Shared"
      | D.Shard i -> Fmt.pf ppf "Shard %d" i)
    ( = )

let test_placement_policy () =
  let r = Server.Job.runner ~shards:4 () in
  let record w = Server.Job.Record { workload = w; seed = 1; out = "/dev/null" } in
  Alcotest.check place_testable "lint is shared" D.Shared
    (r.Server.Job.place (Server.Job.Lint { workload = "fig1ab" }));
  Alcotest.check place_testable "unmeasured -XL is shared by name" D.Shared
    (r.Server.Job.place (record "primes-XL"));
  let affinity = D.Shard (Hashtbl.hash "fig1ab" mod 4) in
  Alcotest.check place_testable "unmeasured small job pins to affinity"
    affinity
    (r.Server.Job.place (record "fig1ab"));
  Alcotest.check place_testable "same affinity across ops" affinity
    (r.Server.Job.place
       (Server.Job.Replay { workload = "fig1ab"; trace = "x" }));
  (* measurement overrides both defaults *)
  Server.Estimate.note r.Server.Job.estimates "fig1ab" 5_000_000;
  Alcotest.check place_testable "measured XL moves to shared" D.Shared
    (r.Server.Job.place (record "fig1ab"));
  Server.Estimate.note r.Server.Job.estimates "primes-XL" 100;
  Alcotest.check place_testable "measured small -XL pins to affinity"
    (D.Shard (Hashtbl.hash "primes-XL" mod 4))
    (r.Server.Job.place (record "primes-XL"))

(* --- dispatcher: the two scheduling bugfixes ----------------------------- *)

(* Retry backoff must not block the shard: with ONE shard, a failing job
   with a long backoff is re-enqueued with an earliest-start time, and the
   small jobs queued behind it run during the backoff window instead of
   waiting it out. *)
let test_backoff_does_not_block_shard () =
  let d =
    D.create ~shards:1
      ~run:(fun _ctx fail -> if fail then failwith "boom" else ())
      ()
  in
  ignore (D.submit d ~max_retries:2 ~backoff:0.15 true);
  for _ = 1 to 5 do
    ignore (D.submit d false)
  done;
  match D.drain d with
  | flaky :: fast ->
    (match flaky.D.r_outcome with
    | D.Failed _ -> ()
    | _ -> Alcotest.fail "flaky job should exhaust its budget");
    Alcotest.(check int) "budget spent" 3 flaky.D.r_attempts;
    Alcotest.(check bool)
      (Fmt.str "flaky waited out both backoffs (%.3fs)" flaky.D.r_latency)
      true
      (flaky.D.r_latency >= 0.4);
    List.iter
      (fun r ->
        Alcotest.(check bool)
          (Fmt.str "small job ran during the backoff (%.3fs)" r.D.r_latency)
          true
          (r.D.r_latency < 0.1))
      fast
  | [] -> Alcotest.fail "no results"

(* An entry whose deadline passed while it sat in the queue completes as
   Timed_out with zero attempts — the run function (and so any VM) is
   never touched. *)
let test_deadline_expired_at_dequeue () =
  let ran = ref false in
  let d = D.create ~shards:1 ~run:(fun _ctx () -> ran := true) () in
  ignore (D.submit d ~deadline:(Unix.gettimeofday () -. 1.) ());
  (match D.drain d with
  | [ r ] ->
    (match r.D.r_outcome with
    | D.Timed_out -> ()
    | _ -> Alcotest.fail "expected Timed_out");
    Alcotest.(check int) "never attempted" 0 r.D.r_attempts
  | _ -> Alcotest.fail "expected 1 result");
  Alcotest.(check bool) "run fn never invoked" false !ran

(* --- jobq: not_before scheduling ----------------------------------------- *)

let test_jobq_requeue_not_before () =
  let q = Server.Jobq.create ~shards:1 () in
  let a = Server.Jobq.submit q ~shard:0 "a" in
  ignore (Server.Jobq.submit q "b");
  (match Server.Jobq.pop_shard q ~shard:0 with
  | Some e when e.Server.Jobq.payload = "a" -> ()
  | _ -> Alcotest.fail "local queue should pop first");
  let due_at = Unix.gettimeofday () +. 0.08 in
  Server.Jobq.requeue q a ~not_before:due_at;
  (* the backing-off entry is skipped; the shared entry pops instead *)
  (match Server.Jobq.pop_shard q ~shard:0 with
  | Some e -> Alcotest.(check string) "steals past it" "b" e.Server.Jobq.payload
  | None -> Alcotest.fail "shared entry vanished");
  (* then pop blocks until the entry is due *)
  (match Server.Jobq.pop_shard q ~shard:0 with
  | Some e ->
    Alcotest.(check string) "requeued entry" "a" e.Server.Jobq.payload;
    Alcotest.(check bool) "not early" true
      (Unix.gettimeofday () >= due_at -. 0.01)
  | None -> Alcotest.fail "requeued entry vanished");
  Server.Jobq.close q;
  Alcotest.(check bool) "drained" true (Server.Jobq.pop_shard q ~shard:0 = None)

(* Cancellation makes a backing-off entry immediately poppable: its result
   slot must not wait out the backoff. *)
let test_jobq_cancel_overrides_not_before () =
  let q = Server.Jobq.create ~shards:1 () in
  let a = Server.Jobq.submit q ~shard:0 "a" in
  (match Server.Jobq.pop_shard q ~shard:0 with
  | Some _ -> ()
  | None -> Alcotest.fail "pop");
  Server.Jobq.requeue q a ~not_before:(Unix.gettimeofday () +. 30.);
  Server.Jobq.cancel a;
  let t0 = Unix.gettimeofday () in
  (match Server.Jobq.pop_shard q ~shard:0 with
  | Some e ->
    Alcotest.(check bool) "flagged" true (Server.Jobq.is_cancelled e);
    Alcotest.(check bool) "immediate" true (Unix.gettimeofday () -. t0 < 1.)
  | None -> Alcotest.fail "cancelled entry vanished");
  Server.Jobq.close q

(* --- batch: warm vs cold aggregate --------------------------------------- *)

let batch_specs out_dir =
  List.concat_map
    (fun name ->
      List.map
        (fun i ->
          Server.Job.Record
            {
              workload = name;
              seed = 1;
              out = Filename.concat out_dir (Fmt.str "%s-%d.trace" name i);
            })
        [ 0; 1 ])
    [ "fig1ab"; "racy-counter"; "bank"; "primes"; "native" ]
  @ [ Server.Job.Roundtrip { workload = "synced-counter"; seed = 3 } ]

let test_batch_warm_equals_cold () =
  with_tmp_dir (fun dc ->
      with_tmp_dir (fun dw ->
          let cold = Server.Batch.run_specs ~warm:false (batch_specs dc) in
          let warm = Server.Batch.run_specs ~shards:4 (batch_specs dw) in
          Alcotest.(check bool) "cold ok" true cold.Server.Batch.ok;
          Alcotest.(check bool) "warm ok" true warm.Server.Batch.ok;
          Alcotest.(check string) "aggregate digest warm = cold"
            cold.Server.Batch.aggregate warm.Server.Batch.aggregate;
          Alcotest.(check bool) "cold ran no pools" true
            (cold.Server.Batch.warm = Server.Warm.zero);
          let w = warm.Server.Batch.warm in
          Alcotest.(check bool)
            (Fmt.str "warm run reset VMs (%d hits)" w.Server.Warm.w_hits)
            true
            (w.Server.Warm.w_hits >= 1)))

let () =
  Alcotest.run "warm"
    [
      ("vm", [ quick "reset equals cold boot" test_reset_equals_cold ]);
      ( "regir",
        [
          quick "reset rolls back the register tier"
            test_reset_rolls_back_register_tier;
          quick "warm reuse across tier-up" test_warm_reuse_across_tierup;
        ] );
      ("pool", [ quick "counters and LRU" test_pool_counters_and_lru ]);
      ( "identity",
        [
          quick "registry-wide warm = cold" test_warm_cold_identity_registry;
          quick "after a cancelled job" test_warm_after_cancelled_job;
        ] );
      ("placement", [ quick "policy" test_placement_policy ]);
      ( "dispatcher",
        [
          quick "backoff frees the shard" test_backoff_does_not_block_shard;
          quick "deadline expired at dequeue" test_deadline_expired_at_dequeue;
        ] );
      ( "jobq",
        [
          quick "requeue honours not_before" test_jobq_requeue_not_before;
          quick "cancel overrides not_before" test_jobq_cancel_overrides_not_before;
        ] );
      ("batch", [ quick "warm aggregate = cold" test_batch_warm_equals_cold ]);
    ]
