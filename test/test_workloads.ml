(* Catalogue-wide checks: every workload runs to its expected terminal
   state across seeds, its semantic invariants hold, and the flagship
   server workload conserves requests under every schedule. *)

open Tutil

let all () = Lazy.force Workloads.Registry.all

let test_catalogue_completes () =
  List.iter
    (fun (e : Workloads.Registry.entry) ->
      List.iter
        (fun seed ->
          let vm, st = run ~natives:e.natives ~seed e.program in
          match st with
          | Vm.Rt.Finished | Vm.Rt.Halted _ | Vm.Rt.Deadlocked ->
            Alcotest.(check bool)
              (Fmt.str "%s/%d output or deadlock" e.name seed)
              true
              (String.length (Vm.output vm) > 0 || st = Vm.Rt.Deadlocked)
          | st ->
            Alcotest.failf "%s/%d: %s" e.name seed (Vm.string_of_status st))
        [ 1; 3 ])
    (all ())

let test_catalogue_checks_clean () =
  List.iter
    (fun (e : Workloads.Registry.entry) ->
      Alcotest.(check (list string)) (e.name ^ " static checks") []
        (List.map
           (fun i -> Fmt.str "%a" Bytecode.Check.pp_issue i)
           (Bytecode.Check.check e.program)))
    (all ())

let test_catalogue_verifies () =
  (* every method of every workload passes the dataflow verifier, and —
     with the compile-time audits on — the fused stream and the lowered
     region table re-verify against the canonical code. Production
     configs skip the audits for wall time; this is where they run. *)
  let config = { Vm.Rt.default_config with Vm.Rt.audit = true } in
  List.iter
    (fun (e : Workloads.Registry.entry) ->
      let vm = Vm.create ~config ~natives:e.natives e.program in
      Array.iter
        (fun (m : Vm.Rt.rmethod) ->
          match Vm.Compile.compile vm m with
          | _ -> ()
          | exception Vm.Verify.Error msg ->
            Alcotest.failf "%s: %s rejected: %s" e.name m.rm_name msg)
        vm.Vm.Rt.methods)
    (all ())

let test_webserver_conservation () =
  List.iter
    (fun seed ->
      let p = Workloads.Webserver.program ~workers:3 ~requests:40 () in
      let out, st = run_output ~seed p in
      Alcotest.check status_testable (Fmt.str "seed %d" seed) Vm.Rt.Finished st;
      Alcotest.(check bool) "served all" true (contains out "served=40");
      (* hits + misses = number of get requests; both are printed *)
      let field name =
        out |> String.split_on_char '\n'
        |> List.find_map (fun l ->
               if
                 String.length l > String.length name
                 && String.sub l 0 (String.length name) = name
               then
                 int_of_string_opt
                   (String.sub l (String.length name)
                      (String.length l - String.length name))
               else None)
      in
      match (field "hits=", field "misses=") with
      | Some h, Some m ->
        Alcotest.(check bool) "gets bounded" true (h >= 0 && m >= 0 && h + m <= 40)
      | _ -> Alcotest.fail "missing stats")
    [ 1; 2; 3; 4 ]

let test_webserver_replay () =
  let p = Workloads.Webserver.program () in
  let rt = Dejavu.verify_roundtrip ~seed:9 p in
  Alcotest.(check bool) "roundtrip" true (Dejavu.ok rt)

let test_catalogue_distinct_names () =
  let names = Workloads.Registry.names () in
  Alcotest.(check int) "unique names" (List.length names)
    (List.length (List.sort_uniq compare names));
  Alcotest.(check bool) "catalogue is rich" true (List.length names >= 20)

let () =
  Alcotest.run "workloads"
    [
      ( "catalogue",
        [
          quick "all complete" test_catalogue_completes;
          quick "all pass static checks" test_catalogue_checks_clean;
          quick "all pass the verifier" test_catalogue_verifies;
          quick "distinct names" test_catalogue_distinct_names;
        ] );
      ( "webserver",
        [
          quick "request conservation" test_webserver_conservation;
          quick "replay" test_webserver_replay;
        ] );
    ]
