(* Static race audit: exact classifications on hand-built programs, the
   generic backward dataflow engine, the monitor-depth sanity pass, the
   dynamic-vs-static containment property (every race the dynamic tracker
   observes must be flagged racy statically), and the trace-header audit
   stamp with the Observer's thread-local fast path. *)

open Tutil

module Report = Analysis.Report
module Sharing = Vm.Observer.Sharing

let find_key (r : Report.t) key =
  List.find_opt (fun (f : Report.finding) -> f.Report.f_key = key) r.Report.findings

let check_status (r : Report.t) key expected =
  match find_key r key with
  | None -> Alcotest.failf "no finding for %S" key
  | Some f ->
    Alcotest.(check string)
      key
      (Report.status_name expected)
      (Report.status_name f.Report.f_status)

(* A heap large enough that the tracked runs never GC (Sharing keys
   state per heap word, so a collection invalidates it). *)
let big_config = { Vm.Rt.default_config with Vm.Rt.heap_words = 1 lsl 22 }

(* --- classification on hand-built programs ------------------------------ *)

(* Two workers increment a static with no lock: the canonical race. *)
let racy_static_prog =
  let c = "C" in
  let worker =
    A.method_ ~nlocals:0 "worker"
      [
        i (I.Getstatic (c, "count"));
        i (I.Const 1);
        i I.Add;
        i (I.Putstatic (c, "count"));
        i I.Ret;
      ]
  in
  let main =
    A.method_ ~nlocals:2 "main"
      [
        i (I.Spawn (c, "worker"));
        i (I.Store 0);
        i (I.Spawn (c, "worker"));
        i (I.Store 1);
        i (I.Load 0);
        i I.Join;
        i (I.Load 1);
        i I.Join;
        i (I.Getstatic (c, "count"));
        i I.Print;
        i I.Ret;
      ]
  in
  D.program [ D.cdecl c ~statics:[ D.field "count" ] [ worker; main ] ]

let test_racy_static () =
  let r = Analysis.run racy_static_prog in
  Alcotest.(check bool) "converged" true r.Report.converged;
  check_status r "C.count (static)" Report.Racy;
  (* provenance: accesses carry method:pc positions *)
  match find_key r "C.count (static)" with
  | None -> Alcotest.fail "finding vanished"
  | Some f ->
    Alcotest.(check bool) "has accesses" true (f.Report.f_accesses <> []);
    List.iter
      (fun (a : Report.acc_view) ->
        Alcotest.(check bool)
          (Fmt.str "provenance %S" a.Report.av_where)
          true
          (contains a.Report.av_where ":"))
      f.Report.f_accesses

(* Writes before spawn and reads after join never overlap: thread-local. *)
let spawn_join_prog =
  let c = "C" in
  let worker =
    A.method_ ~nlocals:0 "worker"
      [
        i (I.Getstatic (c, "g"));
        i (I.Const 1);
        i I.Add;
        i (I.Putstatic (c, "g"));
        i I.Ret;
      ]
  in
  let main =
    A.method_ ~nlocals:1 "main"
      [
        i (I.Const 5);
        i (I.Putstatic (c, "g"));
        i (I.Spawn (c, "worker"));
        i (I.Store 0);
        i (I.Load 0);
        i I.Join;
        i (I.Getstatic (c, "g"));
        i I.Print;
        i I.Ret;
      ]
  in
  D.program [ D.cdecl c ~statics:[ D.field "g" ] [ worker; main ] ]

let test_spawn_join_ordered () =
  let r = Analysis.run spawn_join_prog in
  check_status r "C.g (static)" Report.Thread_local;
  match find_key r "C.g (static)" with
  | Some f ->
    Alcotest.(check bool) "why mentions ordering" true
      (contains f.Report.f_why "spawn/join")
  | None -> Alcotest.fail "no finding"

(* An object that never leaves its allocating thread. *)
let test_confined_allocation () =
  let p =
    main_prog ~fields:[ D.field "f" ]
      [
        i (I.New "T");
        i (I.Store 0);
        i (I.Load 0);
        i (I.Const 7);
        i (I.Putfield ("T", "f"));
        i (I.Load 0);
        i (I.Getfield ("T", "f"));
        i I.Print;
        i I.Ret;
      ]
  in
  let r = Analysis.run p in
  check_status r "T.f" Report.Thread_local;
  (match find_key r "T.f" with
  | Some f ->
    Alcotest.(check bool) "why mentions confinement" true
      (contains f.Report.f_why "confined")
  | None -> Alcotest.fail "no field finding");
  (* and the allocation site itself is classified thread-local *)
  let site =
    List.find_opt
      (fun (f : Report.finding) ->
        f.Report.f_kind = `Site && contains f.Report.f_key "new T")
      r.Report.findings
  in
  match site with
  | Some f ->
    Alcotest.(check string) "site status" "thread_local"
      (Report.status_name f.Report.f_status)
  | None -> Alcotest.fail "no site finding for new T"

let test_counters_twins () =
  (* the registry's racy/synced counter pair gets opposite verdicts *)
  let racy = Analysis.run (Workloads.Counters.racy ()) in
  check_status racy "Racy.count (static)" Report.Racy;
  let synced = Analysis.run (Workloads.Counters.synced ()) in
  check_status synced "Counter.value" Report.Lock_consistent

(* --- the generic backward engine: liveness ------------------------------ *)

module Bits = struct
  type t = int

  let equal = Int.equal

  let join = ( lor )
end

module Live = Analysis.Dataflow.Make (Bits)

let test_liveness_backward () =
  (* 0: Const 5; 1: Store 0; 2: Const 7; 3: Store 1; 4: Load 0; 5: Print;
     6: Ret.  Local 1 is stored but never read — dead everywhere; local 0
     is live-out exactly between its store (pc 1) and its load (pc 4). *)
  let code, _ =
    A.assemble
      [
        i (I.Const 5);
        i (I.Store 0);
        i (I.Const 7);
        i (I.Store 1);
        i (I.Load 0);
        i I.Print;
        i I.Ret;
      ]
  in
  let transfer ~pc:_ (ins : I.t) out =
    match ins with
    | I.Store n -> out land lnot (1 lsl n)
    | I.Load n -> out lor (1 lsl n)
    | _ -> out
  in
  let states =
    Live.solve
      {
        Live.dir = Analysis.Dataflow.Backward;
        code;
        handlers = [];
        entry = 0;
        transfer;
        exn_adapt = None;
      }
  in
  let out pc =
    match states.(pc) with
    | Some s -> s
    | None -> Alcotest.failf "pc %d unreached" pc
  in
  List.iteri
    (fun pc expected ->
      Alcotest.(check int) (Fmt.str "live-out at pc %d" pc) expected (out pc))
    [ 0; 1; 1; 1; 0; 0; 0 ]

(* --- monitor-depth sanity pass ------------------------------------------ *)

let monitor_issue_containing p needle =
  List.exists
    (fun (iss : Bytecode.Check.issue) -> contains iss.Bytecode.Check.what needle)
    (Bytecode.Check.check_monitors p)

let test_monitor_exit_at_zero () =
  let p = main_prog [ i (I.Const 0); i I.Monitorexit; i I.Ret ] in
  Alcotest.(check bool) "flagged" true
    (monitor_issue_containing p "monitorexit may execute with no monitor held")

let test_monitor_leak_on_return () =
  let p = main_prog [ i (I.New "T"); i I.Monitorenter; i I.Ret ] in
  Alcotest.(check bool) "flagged" true
    (monitor_issue_containing p "may return while still holding a monitor")

let test_monitor_nesting_in_loop () =
  let p =
    main_prog
      [ l "loop"; i (I.New "T"); i I.Monitorenter; i (I.Goto "loop") ]
  in
  Alcotest.(check bool) "flagged" true
    (monitor_issue_containing p "monitor nesting may exceed depth")

let test_monitor_balanced_clean () =
  let p =
    main_prog
      [
        i (I.New "T");
        i (I.Store 0);
        i (I.Load 0);
        i I.Monitorenter;
        i (I.Load 0);
        i I.Monitorexit;
        i I.Ret;
      ]
  in
  Alcotest.(check int) "no issues" 0
    (List.length (Bytecode.Check.check_monitors p))

(* --- dynamic ⊆ static --------------------------------------------------- *)

(* Run [p] with the dynamic tracker attached; return (tracker, status). *)
let run_tracked ?skip ?(seed = 1) ?natives p =
  let config =
    {
      big_config with
      Vm.Rt.env_cfg = { big_config.Vm.Rt.env_cfg with Vm.Env.seed };
    }
  in
  let vm = Vm.create ~config ?natives p in
  let sh = Sharing.attach ?skip vm in
  let st = Vm.run vm in
  (sh, st)

let dynamic_subset_of_static ?(where = "") sh p =
  let static_racy = Report.racy_keys (Dejavu.Audit.report_for p) in
  List.for_all
    (fun k ->
      let ok = List.mem k static_racy in
      if not ok then
        Alcotest.failf "%sdynamic race on %S not flagged statically" where k;
      ok)
    (Sharing.racy_keys sh)

let test_registry_dynamic_subset () =
  List.iter
    (fun (e : Workloads.Registry.entry) ->
      let sh, _ = run_tracked ~natives:e.natives e.Workloads.Registry.program in
      (* a collection invalidates per-word keying; workloads that GC even
         under the big heap are exempt from the containment check *)
      if Sharing.valid sh then
        ignore
          (dynamic_subset_of_static ~where:(e.Workloads.Registry.name ^ ": ")
             sh e.Workloads.Registry.program))
    (Lazy.force Workloads.Registry.all)

let test_registry_fully_classified () =
  (* every workload's audit converges and classifies every field with
     method:pc provenance on each recorded access *)
  List.iter
    (fun (e : Workloads.Registry.entry) ->
      let r = Dejavu.Audit.report_for e.Workloads.Registry.program in
      Alcotest.(check bool) (e.Workloads.Registry.name ^ " converged") true
        r.Report.converged;
      List.iter
        (fun (f : Report.finding) ->
          Alcotest.(check bool) "nonempty key" true (f.Report.f_key <> "");
          if f.Report.f_kind = `Field then
            List.iter
              (fun (a : Report.acc_view) ->
                Alcotest.(check bool)
                  (Fmt.str "%s: provenance %S" e.Workloads.Registry.name
                     a.Report.av_where)
                  true
                  (contains a.Report.av_where ":"))
              f.Report.f_accesses)
        r.Report.findings)
    (Lazy.force Workloads.Registry.all)

let prop_dynamic_subset =
  QCheck.Test.make ~count:15 ~name:"dynamic races are flagged statically"
    QCheck.(
      quad (2 -- 4) (1 -- 20) bool (1 -- 5))
    (fun (threads, increments, sync, seed) ->
      let p =
        if sync then Workloads.Counters.synced ~threads ~increments ()
        else Workloads.Counters.racy ~threads ~increments ()
      in
      let sh, st = run_tracked ~seed p in
      (match st with
      | Vm.Rt.Finished | Vm.Rt.Halted _ -> ()
      | st -> QCheck.Test.fail_reportf "bad status %s" (Vm.string_of_status st));
      Sharing.valid sh && dynamic_subset_of_static sh p)

(* --- trace stamp + thread-local fast path ------------------------------- *)

(* Main hammers a private instance field (proven thread-local — skippable)
   while two workers race on a static. *)
let skip_prog =
  let c = "C" in
  let worker =
    A.method_ ~nlocals:1 "worker"
      [
        i (I.Const 30);
        i (I.Store 0);
        l "loop";
        i (I.Load 0);
        i (I.Ifz (I.Le, "end"));
        i (I.Getstatic (c, "count"));
        i (I.Const 1);
        i I.Add;
        i (I.Putstatic (c, "count"));
        i (I.Load 0);
        i (I.Const 1);
        i I.Sub;
        i (I.Store 0);
        i (I.Goto "loop");
        l "end";
        i I.Ret;
      ]
  in
  let main =
    A.method_ ~nlocals:3 "main"
      ([ i (I.New c); i (I.Store 2); i (I.Const 20); i (I.Store 0); l "ml" ]
      @ [
          i (I.Load 0);
          i (I.Ifz (I.Le, "mend"));
          i (I.Load 2);
          i (I.Load 2);
          i (I.Getfield (c, "x"));
          i (I.Const 1);
          i I.Add;
          i (I.Putfield (c, "x"));
          i (I.Load 0);
          i (I.Const 1);
          i I.Sub;
          i (I.Store 0);
          i (I.Goto "ml");
          l "mend";
        ]
      @ [
          i (I.Spawn (c, "worker"));
          i (I.Store 0);
          i (I.Spawn (c, "worker"));
          i (I.Store 1);
          i (I.Load 0);
          i I.Join;
          i (I.Load 1);
          i I.Join;
          i (I.Getstatic (c, "count"));
          i I.Print;
          i (I.Load 2);
          i (I.Getfield (c, "x"));
          i I.Print;
          i I.Ret;
        ])
  in
  D.program
    [
      D.cdecl c ~statics:[ D.field "count" ] ~fields:[ D.field "x" ]
        [ worker; main ];
    ]

let test_skip_predicate () =
  let skip = Dejavu.Audit.skip_for skip_prog in
  Alcotest.(check bool) "C.x skippable" true (skip "C.x");
  Alcotest.(check bool) "C.count not skippable" false (skip "C.count (static)");
  Alcotest.(check bool) "audit hash nonempty" true
    (Dejavu.Audit.hash_for skip_prog <> "")

let record_bytes ~with_sharing p =
  let vm = Vm.create ~config:big_config p in
  let session = Dejavu.Recorder.attach vm in
  let sh =
    if with_sharing then
      Some (Sharing.attach ~skip:(Dejavu.Audit.skip_for p) vm)
    else None
  in
  ignore (Vm.run vm);
  (Dejavu.Recorder.finish session, sh)

let test_fast_path_preserves_trace () =
  (* recording with the tracker + thread-local fast path attached must
     produce byte-identical traces: observation is perturbation-free *)
  let t_plain, _ = record_bytes ~with_sharing:false skip_prog in
  let t_tracked, sh = record_bytes ~with_sharing:true skip_prog in
  Alcotest.(check bool) "byte-identical traces" true
    (Dejavu.Trace.to_bytes t_plain = Dejavu.Trace.to_bytes t_tracked);
  match sh with
  | None -> Alcotest.fail "no tracker"
  | Some sh ->
    Alcotest.(check bool) "no GC during run" true (Sharing.valid sh);
    Alcotest.(check bool) "fast path taken" true (Sharing.n_skipped sh > 0);
    Alcotest.(check bool) "still tracking shared state" true
      (Sharing.n_tracked sh > 0);
    Alcotest.(check bool) "dynamic race seen on the static" true
      (List.mem "C.count (static)" (Sharing.shared_keys sh))

let test_trace_carries_audit_hash () =
  let rt = Dejavu.verify_roundtrip ~config:big_config skip_prog in
  Alcotest.(check bool) "roundtrip ok" true (Dejavu.ok rt);
  Alcotest.(check string) "stamped hash"
    (Dejavu.Audit.hash_for skip_prog)
    rt.Dejavu.trace.Dejavu.Trace.analysis_hash

let test_replay_rejects_other_audit () =
  let t, _ = record_bytes ~with_sharing:false skip_prog in
  let tampered = { t with Dejavu.Trace.analysis_hash = "0000000000000000" } in
  let run, leftovers =
    Dejavu.replay ~config:big_config skip_prog tampered
  in
  Alcotest.(check bool) "rejected" true (run.Dejavu.session = None);
  Alcotest.(check bool) "names the audit" true
    (List.exists (fun m -> contains m "different race audit") leftovers)

(* --- sorted-set primitives ---------------------------------------------- *)

let test_sorted_set_semantics () =
  let module L = Analysis.Lockset in
  Alcotest.(check (list int)) "norm sorts and dedups" [ 1; 2; 3 ]
    (L.norm_sorted [ 3; 1; 2; 1; 3 ]);
  Alcotest.(check (list int)) "inter empty left" [] (L.inter_sorted [] [ 1 ]);
  Alcotest.(check (list int)) "inter disjoint" []
    (L.inter_sorted [ 1; 3 ] [ 2; 4 ]);
  Alcotest.(check (list int)) "inter overlap" [ 2; 4 ]
    (L.inter_sorted [ 1; 2; 4 ] [ 2; 3; 4 ]);
  Alcotest.(check (list int)) "union empty" [ 1 ] (L.union_sorted [ 1 ] []);
  Alcotest.(check (list int)) "union interleaved" [ 1; 2; 3; 4 ]
    (L.union_sorted [ 1; 3 ] [ 2; 3; 4 ])

let prop_sorted_sets =
  QCheck.Test.make ~count:300 ~name:"inter/union_sorted are set operations"
    QCheck.(pair (list small_nat) (list small_nat))
    (fun (xs, ys) ->
      let module L = Analysis.Lockset in
      let a = L.norm_sorted xs and b = L.norm_sorted ys in
      L.inter_sorted a b = List.filter (fun x -> List.mem x b) a
      && L.union_sorted a b = List.sort_uniq compare (xs @ ys))

(* --- MHP refinement + conflict pairs + deadlock cycles ------------------- *)

let registry_program name =
  match Workloads.Registry.find name with
  | Some e -> e.Workloads.Registry.program
  | None -> Alcotest.failf "no registry workload %S" name

let test_gc_churn_refined () =
  (* per-root allocation tags prove each worker's nodes disjoint: the PR-3
     imprecision entries (escape coarsening via Churn.survivor) retire *)
  let r = Dejavu.Audit.report_for (registry_program "gc-churn") in
  check_status r "Node.value" Report.Thread_local;
  check_status r "Node.next" Report.Thread_local;
  (match find_key r "Node.value" with
  | Some f ->
    Alcotest.(check bool) "why names disjointness" true
      (contains f.Report.f_why "distinct objects")
  | None -> Alcotest.fail "no Node.value finding");
  (* the intentional race and the guarded counter are untouched *)
  check_status r "Churn.survivor (static)" Report.Racy;
  check_status r "Churn.total (static)" Report.Lock_consistent;
  (* the Node allocation site no longer backs a racy field *)
  match
    List.find_opt
      (fun (f : Report.finding) ->
        f.Report.f_kind = `Site && contains f.Report.f_key "new Node")
      r.Report.findings
  with
  | Some f ->
    Alcotest.(check bool) "Node site not racy" true
      (f.Report.f_status <> Report.Racy)
  | None -> Alcotest.fail "no Node site finding"

let test_lock_cycle_flagged () =
  let r = Dejavu.Audit.report_for (registry_program "lock-cycle") in
  Alcotest.(check (list string))
    "cycle key"
    [ "static Cycle.lockA -> static Cycle.lockB" ]
    (Report.deadlock_keys r);
  (match r.Report.deadlocks with
  | [ d ] ->
    Alcotest.(check bool) "ab acquisition site" true
      (List.exists
         (fun s -> contains s "Cycle.ab:")
         d.Analysis.Lockorder.dl_sites);
    Alcotest.(check bool) "ba acquisition site" true
      (List.exists
         (fun s -> contains s "Cycle.ba:")
         d.Analysis.Lockorder.dl_sites)
  | ds -> Alcotest.failf "expected exactly one deadlock, got %d" (List.length ds));
  (* lock-protocol-ordered accesses remain DPOR branch points, the lock
     words themselves do not *)
  let cf = Report.conflict_fields r in
  Alcotest.(check bool) "count is a branch point" true
    (List.mem "Cycle.count (static)" cf);
  Alcotest.(check bool) "lockA is not" false
    (List.mem "Cycle.lockA (static)" cf)

let test_registry_no_false_deadlocks () =
  List.iter
    (fun (e : Workloads.Registry.entry) ->
      let r = Dejavu.Audit.report_for e.Workloads.Registry.program in
      let expected =
        if e.Workloads.Registry.name = "lock-cycle" then 1 else 0
      in
      Alcotest.(check int)
        (e.Workloads.Registry.name ^ " deadlocks")
        expected
        (List.length r.Report.deadlocks))
    (Lazy.force Workloads.Registry.all)

(* helper: a method taking [first] then [second], releasing in LIFO order *)
let lock_pair_method c name first second =
  A.method_ ~nlocals:0 name
    [
      i (I.Getstatic (c, first));
      i I.Monitorenter;
      i (I.Getstatic (c, second));
      i I.Monitorenter;
      i (I.Getstatic (c, second));
      i I.Monitorexit;
      i (I.Getstatic (c, first));
      i I.Monitorexit;
      i I.Ret;
    ]

let lock_statics =
  [ D.field ~ty:(I.Tobj "Object") "a"; D.field ~ty:(I.Tobj "Object") "b" ]

(* One thread takes a->b then b->a sequentially: a graph cycle with no
   MHP-overlapping selection, so no deadlock finding. *)
let test_sequential_inversion_not_flagged () =
  let c = "Seq" in
  let body first second =
    [
      i (I.Getstatic (c, first));
      i I.Monitorenter;
      i (I.Getstatic (c, second));
      i I.Monitorenter;
      i (I.Getstatic (c, second));
      i I.Monitorexit;
      i (I.Getstatic (c, first));
      i I.Monitorexit;
    ]
  in
  let main =
    A.method_ ~nlocals:0 "main"
      ([
         i (I.New "Object");
         i (I.Putstatic (c, "a"));
         i (I.New "Object");
         i (I.Putstatic (c, "b"));
       ]
      @ body "a" "b" @ body "b" "a" @ [ i I.Ret ])
  in
  let p = D.program ~main_class:c [ D.cdecl c ~statics:lock_statics [ main ] ] in
  let r = Analysis.run p in
  Alcotest.(check int) "no deadlocks" 0 (List.length r.Report.deadlocks)

(* The inverted takers never overlap: the second is spawned only after the
   first is joined, so the cycle has no MHP-consistent selection either. *)
let test_joined_inversion_not_flagged () =
  let c = "J" in
  let main =
    A.method_ ~nlocals:1 "main"
      [
        i (I.New "Object");
        i (I.Putstatic (c, "a"));
        i (I.New "Object");
        i (I.Putstatic (c, "b"));
        i (I.Spawn (c, "ab"));
        i (I.Store 0);
        i (I.Load 0);
        i I.Join;
        i (I.Spawn (c, "ba"));
        i (I.Store 0);
        i (I.Load 0);
        i I.Join;
        i I.Ret;
      ]
  in
  let p =
    D.program ~main_class:c
      [
        D.cdecl c ~statics:lock_statics
          [
            lock_pair_method c "ab" "a" "b";
            lock_pair_method c "ba" "b" "a";
            main;
          ];
      ]
  in
  let r = Analysis.run p in
  Alcotest.(check int) "no deadlocks" 0 (List.length r.Report.deadlocks);
  (* and the overlapping variant of the same shape IS flagged: drop the
     first join so both takers run concurrently *)
  let main2 =
    A.method_ ~nlocals:2 "main"
      [
        i (I.New "Object");
        i (I.Putstatic (c, "a"));
        i (I.New "Object");
        i (I.Putstatic (c, "b"));
        i (I.Spawn (c, "ab"));
        i (I.Store 0);
        i (I.Spawn (c, "ba"));
        i (I.Store 1);
        i (I.Load 0);
        i I.Join;
        i (I.Load 1);
        i I.Join;
        i I.Ret;
      ]
  in
  let p2 =
    D.program ~main_class:c
      [
        D.cdecl c ~statics:lock_statics
          [
            lock_pair_method c "ab" "a" "b";
            lock_pair_method c "ba" "b" "a";
            main2;
          ];
      ]
  in
  let r2 = Analysis.run p2 in
  Alcotest.(check int) "overlapping variant flagged" 1
    (List.length r2.Report.deadlocks)

(* MHP join monotonicity: merging control-flow information can only grow
   may_overlap, never refute it. *)
let prop_mhp_join_monotone =
  let gen =
    QCheck.Gen.(
      int_range 1 5 >>= fun n ->
      let subset = list_size (int_range 0 n) (int_range 0 (n - 1)) in
      list_repeat n bool >>= fun once ->
      (if n = 1 then return [ -1 ]
       else
         list_repeat (n - 1) (int_range (-2) (n - 2)) >>= fun ps ->
         (* parent of root i must precede i (spawn order); clamp *)
         return (-1 :: List.mapi (fun i p -> if p > i then i else p) ps))
      >>= fun parents ->
      int_range 0 (n - 1) >>= fun ra ->
      int_range 0 (n - 1) >>= fun rc ->
      subset >>= fun sa ->
      subset >>= fun ja ->
      subset >>= fun sb ->
      subset >>= fun jb ->
      subset >>= fun sc ->
      subset >>= fun jc ->
      return (once, parents, ra, rc, (sa, ja, sb, jb, sc, jc)))
  in
  QCheck.Test.make ~count:1000 ~name:"MHP join is monotone"
    (QCheck.make gen)
    (fun (once, parents, ra, rc, (sa, ja, sb, jb, sc, jc)) ->
      let module M = Analysis.Mhp in
      let t =
        M.make ~once:(Array.of_list once) ~parent:(Array.of_list parents)
      in
      let a = M.point ~root:ra ~spawned:sa ~joined:ja in
      let b = M.point ~root:ra ~spawned:sb ~joined:jb in
      let c = M.point ~root:rc ~spawned:sc ~joined:jc in
      let j = M.join a b in
      (not (M.may_overlap t a c)) || M.may_overlap t j c)

(* --- dynamic conflicts ⊆ static conflict-pair set ------------------------ *)

let test_registry_conflict_containment () =
  (* the weak (spawn/join-only) dynamic HB family mirrors exactly the
     ordering facts the static MHP pass is allowed to use, so every
     dynamically observed conflict key must sit in the static conflict set;
     no skip predicate attached — the tracker sees everything *)
  List.iter
    (fun (e : Workloads.Registry.entry) ->
      let sh, _ = run_tracked ~natives:e.natives e.Workloads.Registry.program in
      if Sharing.valid sh then begin
        let static =
          Report.conflict_fields
            (Dejavu.Audit.report_for e.Workloads.Registry.program)
        in
        List.iter
          (fun k ->
            if not (List.mem k static) then
              Alcotest.failf "%s: dynamic conflict on %S not in static set"
                e.Workloads.Registry.name k)
          (Sharing.conflict_keys sh);
        (* conflicts are a superset of full-HB races by construction *)
        List.iter
          (fun k ->
            if not (List.mem k (Sharing.conflict_keys sh)) then
              Alcotest.failf "%s: race on %S missing from conflicts"
                e.Workloads.Registry.name k)
          (Sharing.racy_keys sh)
      end)
    (Lazy.force Workloads.Registry.all)

let () =
  Alcotest.run "analysis"
    [
      ( "classify",
        [
          quick "racy static counter" test_racy_static;
          quick "spawn/join ordered" test_spawn_join_ordered;
          quick "confined allocation" test_confined_allocation;
          quick "counter twins" test_counters_twins;
        ] );
      ("engine", [ quick "backward liveness" test_liveness_backward ]);
      ( "monitors",
        [
          quick "exit at depth 0" test_monitor_exit_at_zero;
          quick "leak on return" test_monitor_leak_on_return;
          quick "nesting in loop" test_monitor_nesting_in_loop;
          quick "balanced is clean" test_monitor_balanced_clean;
        ] );
      ( "dynamic",
        [
          quick "registry: dynamic ⊆ static" test_registry_dynamic_subset;
          quick "registry: fully classified" test_registry_fully_classified;
          QCheck_alcotest.to_alcotest prop_dynamic_subset;
        ] );
      ( "stamp",
        [
          quick "skip predicate" test_skip_predicate;
          quick "fast path preserves trace" test_fast_path_preserves_trace;
          quick "trace carries audit hash" test_trace_carries_audit_hash;
          quick "replay rejects other audit" test_replay_rejects_other_audit;
        ] );
      ( "sets",
        [
          quick "sorted-set semantics" test_sorted_set_semantics;
          QCheck_alcotest.to_alcotest prop_sorted_sets;
        ] );
      ( "mhp",
        [
          quick "gc-churn imprecision retired" test_gc_churn_refined;
          quick "lock-cycle deadlock flagged" test_lock_cycle_flagged;
          quick "registry: no false deadlocks" test_registry_no_false_deadlocks;
          quick "sequential inversion clean" test_sequential_inversion_not_flagged;
          quick "join-ordered inversion clean" test_joined_inversion_not_flagged;
          QCheck_alcotest.to_alcotest prop_mhp_join_monotone;
        ] );
      ( "conflicts",
        [
          quick "registry: dynamic conflicts ⊆ static"
            test_registry_conflict_containment;
        ] );
    ]
