(* The systematic schedule explorer: the controlled scheduler reproduces
   any forced decision vector deterministically, the DFS finds the seeded
   atomicity bug within the preemption bound, emitted failure traces
   replay to the identical failure (and re-recording a schedule is
   byte-identical), the DPOR pruning is sound (same outcome set as the
   unpruned bounded search, at a fraction of the schedules), Sched_error
   from an ill-fitting witness aborts the one schedule without poisoning
   the search, and the farm fan-out matches the sequential driver for any
   shard count. *)

module Control = Explore.Control
module Driver = Explore.Driver
module Oracle = Explore.Oracle
module Trace = Dejavu.Trace

let quick name f = Alcotest.test_case name `Quick f

let find name =
  match Workloads.Registry.find name with
  | Some e -> e
  | None -> Alcotest.fail ("workload missing: " ^ name)

let with_tmp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Fmt.str "dvexp-%d-%.0f" (Unix.getpid ()) (Unix.gettimeofday () *. 1e6))
  in
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun f -> try Sys.remove (Filename.concat dir f) with _ -> ())
          (Sys.readdir dir);
        try Sys.rmdir dir with _ -> ()
      end)
    (fun () -> f dir)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* A small lock-cycle variant so the unpruned bounded tree stays small
   enough to enumerate exhaustively; the distinct name keeps the oracle
   memo separate from the registry's full-size lock-cycle. *)
let lock_cycle_small : Workloads.Registry.entry =
  {
    Workloads.Registry.name = "lock-cycle-small";
    description = "lock-order inversion, short spins (test-only)";
    program = Workloads.Lock_cycle.program ~work:6 ();
    natives = [];
  }

(* --- the seeded atomicity bug ------------------------------------------ *)

(* dvrun explore atomicity must find the check-then-act overdraft within
   preemption bound 2 (one preemption suffices), and the emitted trace
   must replay to the identical failure through the stock replayer. *)
let test_atomicity_bug_found () =
  with_tmp_dir (fun dir ->
      let rep = Driver.run ~pb:2 ~db:1 ~out:dir (find "atomicity") in
      (match rep.Driver.rp_first_failure_at with
      | None -> Alcotest.fail "no fault found"
      | Some k -> Alcotest.(check bool) "found early" true (k <= 64));
      let faults =
        List.filter
          (fun (f : Driver.failure) -> f.Driver.fl_kind = Driver.Fault)
          rep.Driver.rp_failures
      in
      Alcotest.(check bool) "has faults" true (faults <> []);
      let first = List.hd faults in
      Alcotest.(check bool)
        "within preemption bound" true (first.Driver.fl_preempts <= 2);
      (match first.Driver.fl_replay_ok with
      | Some true -> ()
      | v ->
        Alcotest.failf "emitted trace did not replay identically (%s)"
          (match v with
          | None -> "not emitted"
          | Some false -> "mismatch"
          | Some true -> assert false));
      (* the witness sidecar parses back to the decision vector *)
      match first.Driver.fl_witness with
      | None -> Alcotest.fail "no witness emitted"
      | Some w ->
        Alcotest.(check (array int))
          "witness decisions" first.Driver.fl_decisions
          (Driver.decisions_of_witness (read_file w)))

(* Re-running a schedule from its own full decision vector reproduces the
   same trace BYTE-IDENTICALLY — the schedule witness is a complete
   description of the run. *)
let test_schedule_rerecord_byte_identical () =
  let e = find "atomicity" in
  let oracle = Oracle.for_entry e in
  let rep = Driver.run ~pb:2 ~db:1 e in
  let fault =
    List.find
      (fun (f : Driver.failure) -> f.Driver.fl_kind = Driver.Fault)
      rep.Driver.rp_failures
  in
  let run prefix =
    Control.run ~pb:2 ~db:1 ~dpor:true ~oracle ~prefix e
  in
  let a = run fault.Driver.fl_decisions in
  let b = run fault.Driver.fl_decisions in
  Alcotest.(check bool) "not aborted" false a.Control.oc_aborted;
  Alcotest.(check int) "same digest" a.Control.oc_digest b.Control.oc_digest;
  match (a.Control.oc_trace, b.Control.oc_trace) with
  | Some ta, Some tb ->
    Alcotest.(check string)
      "byte-identical traces" (Trace.to_bytes ta) (Trace.to_bytes tb)
  | _ -> Alcotest.fail "schedule did not record"

(* --- DPOR soundness pin ------------------------------------------------ *)

(* Pruning on and off must reach the SAME distinct-outcome set — pruned
   branches only ever cut schedules equivalent to one still explored —
   while exploring at most half the schedules (the acceptance bar; in
   practice far fewer). Pinned on the two seeded-bug workloads. *)
let dpor_pin (e : Workloads.Registry.entry) () =
  let budget = 4000 in
  let on = Driver.run ~pb:2 ~db:1 ~dpor:true ~max_schedules:budget e in
  let off = Driver.run ~pb:2 ~db:1 ~dpor:false ~max_schedules:budget e in
  Alcotest.(check int) "unpruned search complete" 0 off.Driver.rp_frontier_left;
  Alcotest.(check int) "pruned search complete" 0 on.Driver.rp_frontier_left;
  let set d = Driver.digest_set ~pb:2 ~db:1 ~dpor:d ~max_schedules:budget e in
  Alcotest.(check (list int)) "same outcome set" (set false) (set true);
  Alcotest.(check bool)
    (Fmt.str "pruned %d <= half of unpruned %d" on.Driver.rp_explored
       off.Driver.rp_explored)
    true
    (2 * on.Driver.rp_explored <= off.Driver.rp_explored);
  Alcotest.(check bool) "something was pruned" true (on.Driver.rp_pruned > 0)

let test_dpor_atomicity = dpor_pin (find "atomicity")

let test_dpor_lock_cycle = dpor_pin lock_cycle_small

(* --- determinism ------------------------------------------------------- *)

(* Exploring any registry workload twice (small bounds) is bit-for-bit
   repeatable: same schedule counts, same outcome digests, same failures. *)
let test_determinism_registry () =
  List.iter
    (fun (e : Workloads.Registry.entry) ->
      let go () = Driver.run ~pb:1 ~db:1 ~max_schedules:10 e in
      let a = go () and b = go () in
      Alcotest.(check int)
        (e.name ^ " explored") a.Driver.rp_explored b.Driver.rp_explored;
      Alcotest.(check int)
        (e.name ^ " pruned") a.Driver.rp_pruned b.Driver.rp_pruned;
      Alcotest.(check int)
        (e.name ^ " digests") a.Driver.rp_digests b.Driver.rp_digests;
      Alcotest.(check int)
        (e.name ^ " signature") (Driver.signature a) (Driver.signature b))
    (Lazy.force Workloads.Registry.all)

(* --- Sched_error containment ------------------------------------------- *)

(* A witness that names a non-ready thread at a pick slot aborts that one
   schedule (Sched.dispatch validates BEFORE mutating its queue, so the
   VM is not corrupted) — and the DFS treats it as a dead branch. *)
let test_bad_witness_aborts () =
  let e = find "atomicity" in
  let oracle = Oracle.for_entry e in
  (* slot 0 of atomicity is a pick; tid 99 never exists *)
  let oc =
    Control.run ~pb:2 ~db:1 ~dpor:true ~oracle ~prefix:[| 99 |] e
  in
  Alcotest.(check bool) "aborted" true oc.Control.oc_aborted;
  Alcotest.(check bool) "no trace" true (oc.Control.oc_trace = None);
  (* the same Control state machinery still works after an abort *)
  let ok = Control.run ~pb:2 ~db:1 ~dpor:true ~oracle ~prefix:[||] e in
  Alcotest.(check bool) "clean rerun" false ok.Control.oc_aborted

(* --- the farm fan-out -------------------------------------------------- *)

(* The frontier fan-out must explore the same tree as the sequential DFS
   — same counts, same outcome digests, same failure set — for any shard
   count (results are consumed in submission order, so the farm schedule
   sequence is shard-count invariant). *)
let test_farm_matches_sequential () =
  let e = find "atomicity" in
  let seq = Driver.run ~pb:2 ~db:1 e in
  List.iter
    (fun shards ->
      let farm = Server.Explore_farm.run ~shards ~pb:2 ~db:1 e in
      Alcotest.(check int) "explored" seq.Driver.rp_explored
        farm.Driver.rp_explored;
      Alcotest.(check int) "pruned" seq.Driver.rp_pruned farm.Driver.rp_pruned;
      Alcotest.(check int) "digests" seq.Driver.rp_digests
        farm.Driver.rp_digests;
      Alcotest.(check int) "baseline" seq.Driver.rp_baseline
        farm.Driver.rp_baseline;
      Alcotest.(check int) "signature" (Driver.signature seq)
        (Driver.signature farm))
    [ 1; 3 ]

(* --- witness re-drive property ----------------------------------------- *)

(* ANY forced decision vector — valid, bound-exceeding, or nonsensical —
   drives the controlled scheduler deterministically: running it twice
   gives the same outcome digest, decision log, and abort flag; and
   re-driving a completed run's own (longer) decision vector reproduces
   its digest. *)
let prop_witness_redrive =
  QCheck.Test.make ~name:"explore: witness re-drives to the same outcome"
    ~count:40
    QCheck.(list_of_size Gen.(int_bound 12) (int_bound 3))
    (fun forced ->
      let e = find "atomicity" in
      let oracle = Oracle.for_entry e in
      let prefix = Array.of_list forced in
      let run p = Control.run ~pb:3 ~db:2 ~dpor:true ~oracle ~prefix:p e in
      let a = run prefix and b = run prefix in
      a.Control.oc_digest = b.Control.oc_digest
      && a.Control.oc_aborted = b.Control.oc_aborted
      && Control.decisions a = Control.decisions b
      && (a.Control.oc_aborted
         ||
         let c = run (Control.decisions a) in
         c.Control.oc_digest = a.Control.oc_digest))

let () =
  Alcotest.run "explore"
    [
      ( "atomicity",
        [
          quick "bug found, trace replays" test_atomicity_bug_found;
          quick "re-record byte-identical" test_schedule_rerecord_byte_identical;
        ] );
      ( "dpor",
        [
          quick "soundness pin: atomicity" test_dpor_atomicity;
          quick "soundness pin: lock-cycle" test_dpor_lock_cycle;
        ] );
      ( "determinism",
        [
          quick "registry-wide repeatability" test_determinism_registry;
          quick "bad witness aborts cleanly" test_bad_witness_aborts;
        ] );
      ("farm", [ quick "fan-out matches sequential" test_farm_matches_sequential ]);
      ("props", [ QCheck_alcotest.to_alcotest prop_witness_redrive ]);
    ]
