# Convenience targets; everything below is plain dune.

.PHONY: all build test smoke bench clean

all: build

build:
	dune build

test:
	dune runtest

# Tier-1 gate plus the perf trajectory: build, full test suite, and the
# machine-readable dispatch benchmark (writes BENCH_interp.json).
smoke:
	dune build && dune runtest && dune exec bench/main.exe -- --json

bench:
	dune exec bench/main.exe

clean:
	dune clean
