# Convenience targets; everything below is plain dune.

.PHONY: all build test smoke batch-smoke bench-farm regir-smoke explore-smoke bench lint clean

all: build

build:
	dune build

test:
	dune runtest

# Tier-1 gate plus the perf trajectory: build, full test suite, and the
# machine-readable dispatch benchmark (writes BENCH_interp.json).
smoke:
	dune build && dune runtest && dune exec bench/main.exe -- --json

# Replay farm gate: record the whole registry across 4 shard domains and
# fail unless every job completes (the aggregate digest is checked against
# a sequential run by test_server and bench E12).
batch-smoke:
	dune exec bin/dvrun.exe -- batch --shards 4 --out _batch

# Warm-reuse gate: record the registry twice over on warm shard pools at
# 1 and 2 shards and fail unless the aggregate digests are identical —
# recycling VMs must change scheduling, never results.
bench-farm:
	dune exec bench/main.exe -- farm-smoke

# Register-tier gate: record every registry workload with the register-IR
# compile tier on and off and fail unless trace bytes, state digests,
# event digests, and observer counts are identical — the tier is a pure
# perf optimisation and must be invisible to replay.
regir-smoke:
	dune exec bench/main.exe -- regir-smoke

# Exploration gate: the bounded DPOR search must find the seeded
# atomicity bug, and every emitted failure trace must replay through the
# stock replayer to the identical status/output/state digest (exit 1
# otherwise — --expect-failure inverts the usual success criterion).
explore-smoke:
	rm -rf _explore && dune exec bin/dvrun.exe -- explore atomicity \
	  --out _explore --expect-failure

bench:
	dune exec bench/main.exe

# Static race audit over the whole workload registry, gated by the curated
# allow-list (exit 1 on any racy finding not in LINT_baseline.json).
lint:
	dune exec bin/dvrun.exe -- lint --all --baseline LINT_baseline.json

clean:
	dune clean
